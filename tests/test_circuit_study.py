"""The circuit-study subsystem: Verilog/generator → techmap → per-unique-cell
Monte Carlo + measured timing → circuit yield/delay/energy.

The contracts under test are the ISSUE-9 acceptance criteria:

* per-unique-cell evaluation — the immunity and timing engines run exactly
  once per **distinct** mapped cell, never per instance (counter tests);
* bit-identity — serial, thread and process backends, and cold vs warm
  corner stores, produce equal results, with ``provenance.cache``
  recording ``miss`` / ``hit`` / ``partial:<h>/<n>``;
* lossless serialization — ``to_json()``/``from_json()`` round-trips and
  the envelope validates against ``docs/repro_result.schema.json``;
* typed errors — malformed specs, unknown gate types and bad CLI usage
  raise :class:`StudyError`/:class:`MappingError` (CLI exit 2).
"""

import io
import json
import os
import subprocess
import sys

import pytest

import repro.cells.characterize as characterize
import repro.immunity.montecarlo as montecarlo
from repro.circuit.netlist import GateNetlist
from repro.circuit_study import generate_circuit, resolve_circuit, run_circuit_study
from repro.errors import MappingError, StudyError
from repro.flow.verilog import full_adder_verilog, ripple_carry_adder_netlist
from repro.runtime.cache import ResultCache
from repro.study import (
    CircuitStudyResult,
    StudyResult,
    SweepSpec,
    get_study,
    run_study,
    run_sweep_study,
)
from repro.study.cli import main as cli_main
from repro.study.results import RESULT_SCHEMA
from repro.study.sweeps import _sweep_corner_keys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_PATH = os.path.join(REPO_ROOT, "docs", "repro_result.schema.json")
VALIDATOR_PATH = os.path.join(REPO_ROOT, "tools", "validate_repro_json.py")

#: One small configuration shared by most tests, so the module-scoped corner
#: store turns every run after the first into near-free cache hits.
FAST = dict(circuit="adder:2", trials=16, seed=2009, draws=128)


def run_fast(**overrides):
    return run_circuit_study(**{**FAST, **overrides})


@pytest.fixture(scope="module")
def shared_store(tmp_path_factory):
    """A corner store shared across this module's tests (warm after the
    first cold run; every test stays correct when run in isolation)."""
    return ResultCache(tmp_path_factory.mktemp("circuit-store"))


@pytest.fixture
def immunity_counter(monkeypatch):
    calls = []
    real = montecarlo.run_immunity_trials

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(montecarlo, "run_immunity_trials", counting)
    return calls


@pytest.fixture
def timing_counter(monkeypatch):
    calls = []
    real = characterize.measured_timing_models

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(characterize, "measured_timing_models", counting)
    return calls


def run_cli(*argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = cli_main(list(argv), stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


class TestCircuitResolution:
    def test_generator_families(self):
        assert generate_circuit("adder:2").name == "rca2"
        assert generate_circuit("rca:8").name == "rca8"
        assert generate_circuit("comparator").name == "cmp4"
        assert generate_circuit("cmp:3").name == "cmp3"
        assert generate_circuit("mac:2").name == "mac2"
        assert generate_circuit("fulladder").name == "full_adder"

    def test_generated_netlists_validate(self):
        for spec in ("adder:3", "comparator:1", "comparator:2", "mac:3"):
            netlist = generate_circuit(spec)
            netlist.validate()
            assert netlist.gates

    @pytest.mark.parametrize("spec", ["", "adder:0", "warp:4", "adder:4:2",
                                      "adder:x"])
    def test_bad_specs_raise_study_error(self, spec):
        with pytest.raises(StudyError):
            generate_circuit(spec)

    def test_resolve_all_three_spellings(self):
        netlist, source = resolve_circuit(ripple_carry_adder_netlist(2))
        assert (netlist.name, source) == ("rca2", "netlist:rca2")
        netlist, source = resolve_circuit(full_adder_verilog())
        assert (netlist.name, source) == ("full_adder", "verilog:full_adder")
        netlist, source = resolve_circuit("  Adder:2 ")
        assert (netlist.name, source) == ("rca2", "adder:2")

    def test_resolve_rejects_other_types(self):
        with pytest.raises(StudyError):
            resolve_circuit(42)

    def test_out_of_library_gate_type_is_a_mapping_error(self):
        netlist = GateNetlist("exotic")
        netlist.add_gate("g0", "XOR9", {"a": "a", "b": "b", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        with pytest.raises(MappingError, match="XOR9"):
            run_circuit_study(netlist, trials=4, draws=4)


class TestPerUniqueCell:
    def test_engines_run_once_per_unique_cell(self, immunity_counter,
                                              timing_counter):
        """An adder:2 has 18 instances but exactly two unique cells — the
        engines must be invoked per cell, never per instance."""
        result = run_fast()
        assert result.instances == 18
        assert result.unique_cells == 2
        assert [cell.cell for cell in result.cells] == ["NAND2_2X", "NAND2_4X"]
        assert len(immunity_counter) == 2
        assert len(timing_counter) == 2
        assert sum(cell.instances for cell in result.cells) == 18

    def test_instance_count_scales_but_cell_work_does_not(self):
        """adder:8 is 4x the instances of adder:2 with identical unique
        cells, so its per-cell corner keys are the same addresses."""
        for circuit in ("adder:2", "adder:8"):
            netlist, _ = resolve_circuit(circuit)
            assert {gate.cell_type for gate in netlist.gates} == {"NAND2"}
        assert len(resolve_circuit("adder:8")[0].gates) == 72

    def test_cell_reports_carry_both_engines(self, shared_store):
        result = run_fast(cache=shared_store)
        for cell in result.cells:
            assert cell.trials == FAST["trials"]
            assert 0.0 <= cell.failure_rate <= 1.0
            assert cell.input_capacitance_f > 0
            assert cell.drive_resistance_ohm > 0
            assert cell.parasitic_capacitance_f >= 0


class TestAggregation:
    def test_compact_layout_is_immune_at_defaults(self, shared_store):
        """The paper's compact technique tolerates mispositioned CNTs, so
        with no metallic residue the whole circuit yields."""
        result = run_fast(cache=shared_store)
        assert result.functional_yield == 1.0
        assert result.monte_carlo_yield == 1.0
        assert result.defect_histogram == ((0, FAST["draws"]),)
        assert all(cell.immune for cell in result.cells)

    def test_metallic_residue_degrades_yield(self, shared_store):
        clean = run_fast(cache=shared_store)
        dirty = run_fast(cache=shared_store, metallic_fraction=0.05)
        assert dirty.functional_yield < clean.functional_yield
        assert 0.0 <= dirty.monte_carlo_yield < 1.0
        # The analytic product and the Monte Carlo estimate agree loosely.
        assert abs(dirty.monte_carlo_yield - dirty.functional_yield) < 0.15
        assert sum(freq for _count, freq in dirty.defect_histogram) == \
            FAST["draws"]

    def test_timing_and_energy_are_positive_and_anchored(self, shared_store):
        result = run_fast(cache=shared_store)
        assert result.critical_path_delay_s > 0
        assert result.total_energy_per_cycle_j > 0
        assert result.total_cell_area_lambda2 > 0
        assert set(result.output_arrivals_s) == \
            set(resolve_circuit("adder:2")[0].outputs)
        # The worst output's arrival IS the critical-path delay.
        assert max(result.output_arrivals_s.values()) == \
            pytest.approx(result.critical_path_delay_s)
        assert result.critical_path[-1] in \
            {gate.name for gate in resolve_circuit("adder:2")[0].gates}


class TestCacheContracts:
    def test_cold_miss_then_warm_hit_bit_identical(self, tmp_path,
                                                   immunity_counter,
                                                   timing_counter):
        store = ResultCache(tmp_path / "store")
        cold = run_fast(cache=store)
        assert cold.provenance.cache == "miss"
        cold_calls = (len(immunity_counter), len(timing_counter))
        assert cold_calls == (2, 2)

        warm = run_fast(cache=store)
        assert warm.provenance.cache == "hit"
        # No engine ran on the warm pass...
        assert (len(immunity_counter), len(timing_counter)) == cold_calls
        # ...and the result is bit-identical (cache status is excluded
        # from equality by the runtime layer's contract).
        assert warm == cold

    def test_partial_reuse_across_circuits(self, shared_store,
                                           immunity_counter):
        """A comparator reuses the adder's NAND2 corners from the store and
        computes only its own INV cells — cell identity, not circuit
        identity, addresses the corner."""
        adder = run_fast(cache=shared_store)  # ensure the adder cells are warm
        adder_cells = {cell.cell for cell in adder.cells}
        immunity_counter.clear()

        comparator = run_fast(cache=shared_store, circuit="comparator:2")
        new_cells = {cell.cell for cell in comparator.cells} - adder_cells
        assert new_cells  # the comparator really does add INV cells
        hits = 2 * (comparator.unique_cells - len(new_cells))
        total = 2 * comparator.unique_cells
        assert comparator.provenance.cache == f"partial:{hits}/{total}"
        assert len(immunity_counter) == len(new_cells)

    def test_changed_trials_miss_immunity_but_keep_timing(self, shared_store,
                                                          timing_counter):
        """Timing corners don't depend on the Monte Carlo trial count, so
        only the immunity half of the grid recomputes."""
        run_fast(cache=shared_store)
        timing_counter.clear()
        bumped = run_fast(cache=shared_store, trials=FAST["trials"] + 1)
        assert bumped.provenance.cache == "partial:2/4"
        assert len(timing_counter) == 0

    def test_no_cache_records_no_status(self):
        # A single-gate netlist keeps this cheap: we only need provenance
        # — the uncached path must leave provenance.cache unset.
        netlist = GateNetlist("single")
        netlist.add_gate("g0", "NAND2", {"a": "a", "b": "b", "out": "y"})
        netlist.declare_io(["a", "b"], ["y"])
        result = run_circuit_study(netlist, trials=2, draws=8)
        assert result.provenance.cache is None
        assert result.source == "netlist:single"


@pytest.fixture(scope="module")
def serial_result():
    return run_fast(workers=1, backend="serial")


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_backends_match_serial(self, backend, serial_result):
        parallel = run_fast(workers=2, backend=backend)
        assert parallel == serial_result
        assert parallel.provenance == serial_result.provenance

    def test_scheduling_never_enters_provenance(self, shared_store):
        a = run_fast(cache=shared_store)
        b = run_fast(cache=shared_store, workers=2, backend="thread")
        assert a.provenance.config_hash == b.provenance.config_hash
        for key in ("workers", "backend", "cache"):
            assert key not in a.provenance.params


class TestSerialization:
    def test_json_round_trip_is_lossless(self, shared_store):
        result = run_fast(cache=shared_store)
        restored = StudyResult.from_json(result.to_json())
        assert isinstance(restored, CircuitStudyResult)
        assert restored == result
        assert restored.to_dict() == result.to_dict()
        assert restored.cells == result.cells
        assert restored.defect_histogram == result.defect_histogram

    def test_envelope_matches_checked_in_schema(self, shared_store):
        result = run_fast(cache=shared_store)
        document = result.to_json()
        process = subprocess.run(
            [sys.executable, VALIDATOR_PATH, SCHEMA_PATH, "-"],
            input=document, capture_output=True, text=True,
        )
        assert process.returncode == 0, process.stderr
        envelope = json.loads(document)
        assert envelope["schema"] == RESULT_SCHEMA
        assert envelope["study"] == "circuit"
        assert envelope["provenance"]["engine"] == "circuit"

    def test_provenance_hashes_structure_not_spelling(self, shared_store):
        """Verilog text is fingerprinted by its parsed structure, so two
        modules sharing a name but wired differently never collide."""
        by_spec = run_fast(cache=shared_store, circuit="fulladder")
        by_verilog = run_fast(cache=shared_store,
                              circuit=full_adder_verilog())
        assert by_spec.provenance.params["circuit"] == "fulladder"
        structure = by_verilog.provenance.params["circuit"]
        assert isinstance(structure, dict)
        assert structure["name"] == "full_adder"
        assert structure["gates"]

    def test_text_rendering_names_the_cells(self, shared_store):
        rendering = str(run_fast(cache=shared_store))
        for needle in ("NAND2_2X", "yield", "rca2"):
            assert needle in rendering


class TestRegistry:
    def test_circuit_is_registered_with_aliases(self):
        definition = get_study("circuit")
        assert definition.name == "circuit"
        assert get_study("circuit_study") is not None
        assert "workers" in definition.parameters()

    def test_unknown_parameters_fail_fast(self):
        with pytest.raises(StudyError, match="does not accept"):
            run_study("circuit", volts=3)

    def test_run_study_envelope_caching(self, tmp_path):
        store = ResultCache(tmp_path / "envelope")
        cold = run_study("circuit", cache=store, **FAST)
        warm = run_study("circuit", cache=store, **FAST)
        assert isinstance(cold, CircuitStudyResult)
        assert cold.provenance.cache == "miss"
        assert warm.provenance.cache == "hit"
        assert warm == cold


class TestSweepEngine:
    def test_sweep_addresses_ignore_circuit_spelling(self):
        """A generator spec and the Verilog it round-trips through resolve
        to the same netlist structure, hence the same corner addresses."""
        spec = SweepSpec.from_mapping({"metallic_fraction": (0.0, 0.05)})
        by_spec, _ = _sweep_corner_keys(
            spec, "circuit", 8, 7, {"circuit": "fulladder", "draws": 32})
        by_verilog, _ = _sweep_corner_keys(
            spec, "circuit", 8, 7,
            {"circuit": full_adder_verilog(), "draws": 32})
        assert by_spec == by_verilog
        rewired, _ = _sweep_corner_keys(
            spec, "circuit", 8, 7, {"circuit": "adder:2", "draws": 32})
        assert set(rewired).isdisjoint(by_spec)

    def test_electrical_corners_share_defect_seeds(self):
        """vdd/pitch sweeps share per-corner seeds (the Figure-2 contract:
        same defect population, different electrical corner) — the keys
        still differ because vdd enters the resolved binding."""
        spec = SweepSpec.from_mapping({"vdd": (0.9, 1.0)})
        keys, seeds = _sweep_corner_keys(
            spec, "circuit", 8, 7, {"circuit": "fulladder"})
        assert len(set(keys)) == 2
        assert seeds[0].entropy == seeds[1].entropy
        assert tuple(seeds[0].spawn_key) == tuple(seeds[1].spawn_key)

    def test_axis_extension_recomputes_only_the_delta(self, tmp_path,
                                                      immunity_counter):
        store = ResultCache(tmp_path / "sweep-store")
        base = SweepSpec.from_mapping({"metallic_fraction": (0.0, 0.05)})
        cold = run_sweep_study(base, engine="circuit", trials=8, seed=7,
                               cache=store, circuit="adder:2", draws=64)
        assert cold.provenance.cache == "miss"
        assert [r.metrics["functional_yield"] for r in cold.records][0] == 1.0
        assert cold.records[1].metrics["functional_yield"] < 1.0
        immunity_counter.clear()

        wider = SweepSpec.from_mapping({"metallic_fraction": (0.0, 0.05, 0.1)})
        delta = run_sweep_study(wider, engine="circuit", trials=8, seed=7,
                                cache=store, circuit="adder:2", draws=64)
        assert delta.provenance.cache == "partial:2/3"
        # Only the one new corner executed: two unique cells' immunity.
        assert len(immunity_counter) == 2
        assert [r.metrics for r in delta.records[:2]] == \
            [r.metrics for r in cold.records]

        again = run_sweep_study(wider, engine="circuit", trials=8, seed=7,
                                cache=store, circuit="adder:2", draws=64)
        assert again.provenance.cache == "hit"
        assert again == delta

    def test_sweep_rejects_unknown_circuit_axes(self):
        spec = SweepSpec.from_mapping({"volts": (0.9, 1.0)})
        with pytest.raises(StudyError):
            run_sweep_study(spec, engine="circuit", trials=4, seed=7)


class TestCli:
    def test_generate_json_envelope(self, shared_store):
        code, out, _ = run_cli(
            "circuit", "--generate", "adder:2", "--trials", str(FAST["trials"]),
            "--seed", str(FAST["seed"]), "--param", f"draws={FAST['draws']}",
            "--cache", str(shared_store.root), "--json", "-",
        )
        assert code == 0
        document = json.loads(out)
        assert document["study"] == "circuit"
        restored = StudyResult.from_json_dict(document)
        assert isinstance(restored, CircuitStudyResult)
        assert restored == run_fast(cache=shared_store)

    def test_verilog_file_input(self, tmp_path, shared_store):
        source = tmp_path / "fa.v"
        source.write_text(full_adder_verilog(), encoding="utf-8")
        code, out, _ = run_cli(
            "circuit", str(source), "--trials", str(FAST["trials"]),
            "--seed", str(FAST["seed"]), "--param", f"draws={FAST['draws']}",
            "--cache", str(shared_store.root), "--json", "-",
        )
        assert code == 0
        assert json.loads(out)["payload"]["source"] == "verilog:full_adder"

    def test_needs_exactly_one_input(self, tmp_path):
        code, _, err = run_cli("circuit")
        assert code == 2 and "error:" in err
        source = tmp_path / "fa.v"
        source.write_text(full_adder_verilog(), encoding="utf-8")
        code, _, err = run_cli("circuit", str(source), "--generate", "adder:2")
        assert code == 2 and "not both" in err

    def test_unknown_family_exits_2(self):
        code, _, err = run_cli("circuit", "--generate", "warp:9")
        assert code == 2
        assert "warp" in err

    def test_missing_file_exits_2(self, tmp_path):
        code, _, err = run_cli("circuit", str(tmp_path / "absent.v"))
        assert code == 2
        assert "error:" in err

    def test_parse_error_reports_line_and_column(self, tmp_path):
        source = tmp_path / "bad.v"
        source.write_text(
            "module bad (a, y);\n"
            "  input a;\n"
            "  output y;\n"
            "  XOR9_2X g0 (.a(a), .out(y));\n"
            "endmodule\n",
            encoding="utf-8",
        )
        code, _, err = run_cli("circuit", str(source))
        assert code == 2
        assert "line 4" in err and "column" in err
