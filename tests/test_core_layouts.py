"""Tests for repro.core: sizing, compact/baseline/vulnerable layouts, area."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PAPER_TABLE1,
    assemble_cell,
    area_saving,
    baseline_network_layout,
    cmos_cell_area,
    compact_network_layout,
    get_annotations,
    inverter_area_gain,
    leaf_width_factors,
    plan_compact_network,
    series_depth,
    size_gate,
    table1,
    vulnerable_network_layout,
)
from repro.core.compact import compact_network_height
from repro.errors import LayoutGenerationError, NetworkError
from repro.logic import aoi21, aoi31, nand, nor, standard_gate
from repro.tech import CNFET_RULES


class TestSizing:
    def test_nand3_stack_sizing(self):
        gate = nand(3)
        sizing = size_gate(gate, unit_width=4.0)
        # Paper: "n-CNFETs are three times bigger than the p-CNFETs".
        assert all(w == pytest.approx(12.0) for w in sizing.pdn_widths.values())
        assert all(w == pytest.approx(4.0) for w in sizing.pun_widths.values())

    def test_aoi21_mixed_widths(self):
        gate = aoi21()
        sizing = size_gate(gate, unit_width=4.0)
        pdn = sorted(sizing.pdn_widths.values())
        assert pdn == [4.0, 8.0, 8.0]
        assert sorted(set(sizing.pun_widths.values())) == [8.0]

    def test_aoi31_width_factors(self):
        gate = aoi31()
        factors = leaf_width_factors(gate.pdn_tree)
        assert sorted(factors) == [1.0, 3.0, 3.0, 3.0]
        assert series_depth(gate.pun_tree) == 2

    def test_drive_strength_scales_everything(self):
        gate = nand(2)
        base = size_gate(gate, 4.0, drive_strength=1.0)
        strong = size_gate(gate, 4.0, drive_strength=4.0)
        assert strong.total_device_width() == pytest.approx(4 * base.total_device_width())

    def test_invalid_inputs(self):
        with pytest.raises(NetworkError):
            size_gate(nand(2), unit_width=-1.0)
        with pytest.raises(NetworkError):
            size_gate(nand(2), unit_width=4.0, drive_strength=0.0)

    @given(st.integers(min_value=2, max_value=5), st.floats(min_value=3.0, max_value=10.0))
    def test_nand_sizing_property(self, fanin, unit):
        sizing = size_gate(nand(fanin), unit_width=unit)
        assert sizing.max_pdn_width == pytest.approx(fanin * unit)
        assert sizing.max_pun_width == pytest.approx(unit)


class TestCompactLayouts:
    def test_nand3_pun_counts(self):
        gate = nand(3)
        layout = compact_network_layout(gate.pun, gate.pun_tree, unit_width=4.0)
        assert layout.gate_count == 3
        assert layout.contact_count == 4        # Vdd, Out, Vdd, Out
        assert layout.etch_count == 0           # the whole point of the technique
        assert layout.width == pytest.approx(4.0)

    def test_nand3_pdn_has_no_internal_contacts(self):
        gate = nand(3)
        layout = compact_network_layout(gate.pdn, gate.pdn_tree, unit_width=4.0)
        assert layout.contact_count == 2
        assert layout.gate_count == 3

    def test_plan_reports_redundant_contacts(self):
        gate = nand(3)
        plan = plan_compact_network(gate.pun, gate.pun_tree, 4.0)
        assert plan.redundant_contacts == 2
        assert plan.omitted_junctions == 0

    def test_series_junctions_are_omitted(self):
        gate = nand(3)
        plan = plan_compact_network(gate.pdn, gate.pdn_tree, 4.0)
        assert plan.omitted_junctions == 2

    def test_column_height_matches_rule_model(self):
        gate = nand(3)
        layout = compact_network_layout(gate.pun, gate.pun_tree, 4.0)
        expected = CNFET_RULES.linear_chain_length(4, 3)
        assert layout.height == pytest.approx(expected)
        assert compact_network_height(gate.pun, gate.pun_tree, 4.0) == pytest.approx(expected)

    def test_annotations_cover_all_devices(self):
        gate = aoi31()
        layout = compact_network_layout(gate.pdn, gate.pdn_tree, 4.0)
        annotations = get_annotations(layout.cell)
        assert len(annotations.gates) == 4
        assert {g.signal for g in annotations.gates} == {"A", "B", "C", "D"}
        assert len(annotations.actives) == 1
        assert not annotations.requires_vertical_gating

    def test_minimum_width_enforced(self):
        gate = nand(2)
        layout = compact_network_layout(gate.pun, gate.pun_tree, unit_width=1.0)
        assert layout.width == pytest.approx(CNFET_RULES.min_transistor_width)


class TestGridLayouts:
    def test_baseline_nand3_pun_has_two_etched_regions(self):
        layout = baseline_network_layout(nand(3), "pun", unit_width=4.0)
        assert layout.etch_count == 2
        assert layout.gate_count == 3
        annotations = get_annotations(layout.cell)
        # Fan-in 3 parallel group: the middle gate needs vertical gating.
        assert annotations.requires_vertical_gating

    def test_baseline_nand2_does_not_need_vertical_gating(self):
        layout = baseline_network_layout(nand(2), "pun", unit_width=4.0)
        annotations = get_annotations(layout.cell)
        assert not annotations.requires_vertical_gating
        assert layout.etch_count == 1

    def test_vulnerable_has_no_etch(self):
        layout = vulnerable_network_layout(nand(2), "pun", unit_width=4.0)
        assert layout.etch_count == 0

    def test_baseline_wider_than_compact_for_parallel_networks(self):
        gate = nand(3)
        baseline = baseline_network_layout(gate, "pun", unit_width=4.0)
        compact = compact_network_layout(gate.pun, gate.pun_tree, unit_width=4.0)
        assert baseline.width > compact.width
        assert baseline.bbox_area > compact.bbox_area

    def test_pdn_of_nand_matches_between_techniques(self):
        # The paper: "the PDN are similar" for NAND cells.
        gate = nand(3)
        baseline = baseline_network_layout(gate, "pdn", unit_width=4.0)
        compact = compact_network_layout(gate.pdn, gate.pdn_tree, unit_width=4.0)
        assert baseline.bbox_area == pytest.approx(compact.bbox_area)

    def test_invalid_network_selector(self):
        with pytest.raises(LayoutGenerationError):
            baseline_network_layout(nand(2), "pux")


class TestStandardCellAssembly:
    def test_scheme1_height_includes_separation(self):
        cell = assemble_cell(standard_gate("INV"), scheme=1, unit_width=4.0)
        assert cell.height == pytest.approx(4.0 + 4.0 + CNFET_RULES.pun_pdn_separation)

    def test_scheme2_is_shorter_than_scheme1(self):
        gate = standard_gate("NAND2")
        s1 = assemble_cell(gate, scheme=1)
        s2 = assemble_cell(standard_gate("NAND2"), scheme=2)
        assert s2.height < s1.height

    def test_cell_has_pins_and_boundary(self):
        cell = assemble_cell(standard_gate("NAND3"), scheme=1)
        pin_names = {pin.name for pin in cell.cell.pins}
        assert {"A", "B", "C", "out"} <= pin_names
        assert cell.cell.boundary().area == pytest.approx(cell.area)

    def test_annotations_merged_from_both_networks(self):
        cell = assemble_cell(standard_gate("NAND2"), scheme=2)
        annotations = cell.annotations()
        assert len(annotations.gates) == 4
        dopings = {a.doping for a in annotations.actives}
        assert dopings == {"n", "p"}

    def test_unknown_scheme_and_technique(self):
        with pytest.raises(LayoutGenerationError):
            assemble_cell(standard_gate("INV"), scheme=3)
        with pytest.raises(LayoutGenerationError):
            assemble_cell(standard_gate("INV"), technique="magic")

    def test_drive_strength_scales_cell_height(self):
        small = assemble_cell(standard_gate("INV"), drive_strength=1.0)
        large = assemble_cell(standard_gate("INV"), drive_strength=4.0)
        assert large.height > small.height
        assert large.width == pytest.approx(small.width)


class TestAreaModels:
    def test_inverter_area_gain_matches_paper(self):
        gain = inverter_area_gain(unit_width=4.0, scheme=1)
        assert gain.gain == pytest.approx(1.4, rel=0.02)

    def test_cmos_cell_area_formula(self):
        area = cmos_cell_area(standard_gate("INV"), unit_width=4.0)
        assert area.height == pytest.approx(4.0 + 10.0 + 5.6)
        assert area.nmos_width == pytest.approx(4.0)
        assert area.pmos_width == pytest.approx(5.6)

    def test_table1_nand_rows_close_to_paper(self):
        rows = table1(cells=("NAND2", "NAND3"))
        for row in rows:
            assert row.paper_saving is not None
            assert row.error_vs_paper < 0.02, (row.cell, row.unit_width)

    def test_table1_inverter_rows_are_zero(self):
        rows = table1(cells=("INV",))
        for row in rows:
            assert row.measured_saving == pytest.approx(0.0, abs=1e-9)

    def test_table1_orderings_match_paper(self):
        rows = {(r.cell, r.unit_width): r.measured_saving for r in table1()}
        # Savings shrink with transistor width for every multi-input cell.
        for cell in ("NAND2", "NAND3", "AOI22", "AOI21"):
            savings = [rows[(cell, w)] for w in (3.0, 4.0, 6.0, 10.0)]
            assert savings == sorted(savings, reverse=True)
        # AOI cells benefit more than NAND cells, NAND3 more than NAND2.
        for width in (3.0, 4.0, 6.0, 10.0):
            assert rows[("AOI21", width)] > rows[("AOI22", width)]
            assert rows[("AOI22", width)] > rows[("NAND2", width)]
            assert rows[("NAND3", width)] > rows[("NAND2", width)]

    def test_area_saving_positive_for_every_multi_input_cell(self):
        for name in ("NAND2", "NAND3", "NOR2", "NOR3", "AOI21", "AOI22", "OAI21", "OAI22"):
            row = area_saving(standard_gate(name), 4.0)
            assert row.measured_saving > 0.05, name

    def test_paper_table_recorded_completely(self):
        assert set(PAPER_TABLE1) == {"INV", "NAND2", "NAND3", "AOI22", "AOI21"}
        for entries in PAPER_TABLE1.values():
            assert set(entries) == {3, 4, 6, 10}

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["NAND2", "NAND3", "NOR2", "AOI21", "AOI22"]),
           st.floats(min_value=3.0, max_value=12.0))
    def test_compact_never_larger_than_baseline(self, name, width):
        row = area_saving(standard_gate(name), width)
        assert row.compact_area <= row.baseline_area + 1e-9
