"""Corner-level content addressing: delta-only sweep recompute.

The contract under test (PR 6): with a cache attached, a sweep is diffed
against the persistent **corner store** and only the missing corners
execute — while the merged :class:`SweepStudyResult` stays bit-identical
to a cold serial run, on both engines, in grid and zip modes.
"""

import json

import numpy as np
import pytest

import repro.cells.characterize as characterize
import repro.immunity.montecarlo as montecarlo
from repro.errors import CacheError
from repro.runtime import (
    ResultCache,
    corner_fingerprint,
    plan_delta,
)
from repro.study import SweepSpec, run_sweep_study
from repro.study.sweeps import _sweep_corner_keys


# ---------------------------------------------------------------------------
# Engine-invocation counters
# ---------------------------------------------------------------------------

@pytest.fixture
def immunity_counter(monkeypatch):
    """Count per-corner immunity engine invocations (serial/thread)."""
    calls = []
    real = montecarlo.run_immunity_trials

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(montecarlo, "run_immunity_trials", counting)
    return calls


@pytest.fixture
def transient_counter(monkeypatch):
    """Count transient cases actually integrated (serial/thread)."""
    integrated = []
    real = characterize.run_transient_batch

    def counting(cases, **kwargs):
        integrated.extend(cases)
        return real(cases, **kwargs)

    monkeypatch.setattr(characterize, "run_transient_batch", counting)
    return integrated


# ---------------------------------------------------------------------------
# Corner fingerprint stability
# ---------------------------------------------------------------------------

class TestCornerFingerprint:
    def test_stable_and_dict_order_invariant(self):
        a = corner_fingerprint(
            "immunity", {"gate": "NAND2", "cnts_per_trial": 4}, trials=20)
        b = corner_fingerprint(
            "immunity", {"cnts_per_trial": 4, "gate": "NAND2"}, trials=20)
        assert a == b

    def test_numpy_scalars_hash_like_python_scalars(self):
        assert corner_fingerprint(
            "transient", {"vdd": np.float64(0.9), "drive": np.int64(2)},
        ) == corner_fingerprint("transient", {"vdd": 0.9, "drive": 2})

    def test_sensitive_to_params_seed_trials_and_context(self):
        base = corner_fingerprint("immunity", {"gate": "NAND2"}, trials=20)
        assert corner_fingerprint(
            "immunity", {"gate": "NAND3"}, trials=20) != base
        assert corner_fingerprint(
            "immunity", {"gate": "NAND2"}, trials=21) != base
        assert corner_fingerprint(
            "immunity", {"gate": "NAND2"}, trials=20,
            seed=np.random.SeedSequence(7)) != base
        assert corner_fingerprint(
            "immunity", {"gate": "NAND2"}, trials=20,
            context=(1.0, 2.0)) != base

    def test_seed_hashes_by_value(self):
        a = corner_fingerprint("immunity", {"gate": "INV"},
                               seed=np.random.SeedSequence(7), trials=10)
        b = corner_fingerprint("immunity", {"gate": "INV"},
                               seed=np.random.SeedSequence(7), trials=10)
        c = corner_fingerprint("immunity", {"gate": "INV"},
                               seed=np.random.SeedSequence(8), trials=10)
        assert a == b != c

    def test_execution_params_excluded(self):
        assert corner_fingerprint(
            "immunity", {"gate": "INV", "jobs": 4, "backend": "thread"},
        ) == corner_fingerprint("immunity", {"gate": "INV"})

    def test_engines_never_collide(self):
        params = {"gate": "INV"}
        assert corner_fingerprint("immunity", params) != \
            corner_fingerprint("transient", params)


class TestCornerKeyInvariance:
    """The per-corner addresses the sweep driver actually computes."""

    def test_axis_declaration_order_grid_mode(self):
        spec_a = SweepSpec.from_mapping(
            {"technique": ("compact", "vulnerable"),
             "cnts_per_trial": (2, 4)})
        spec_b = SweepSpec.from_mapping(
            {"cnts_per_trial": (2, 4),
             "technique": ("compact", "vulnerable")})
        keys_a, _ = _sweep_corner_keys(spec_a, "immunity", 20, 7, {})
        keys_b, _ = _sweep_corner_keys(spec_b, "immunity", 20, 7, {})
        # Different corner order, identical address *set*: the address
        # hashes the resolved binding, not the declaration order.
        assert sorted(keys_a) == sorted(keys_b)
        assert keys_a != keys_b

    def test_swept_vs_fixed_spelling(self):
        # A one-value axis and a fixed override resolve to the same
        # corner, so they share the address.
        swept = SweepSpec.from_mapping(
            {"cnts_per_trial": (2, 4), "gate": ("NAND3",)})
        fixed = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        keys_swept, _ = _sweep_corner_keys(swept, "immunity", 20, 7, {})
        keys_fixed, _ = _sweep_corner_keys(
            fixed, "immunity", 20, 7, {"gate": "NAND3"})
        assert keys_swept == keys_fixed

    def test_numpy_axis_values_grid_and_transient(self):
        np_spec = SweepSpec.from_mapping(
            {"vdd": tuple(np.linspace(0.9, 1.0, 2))})
        py_spec = SweepSpec.from_mapping({"vdd": (0.9, 1.0)})
        np_keys, _ = _sweep_corner_keys(np_spec, "transient", 0, None, {})
        py_keys, _ = _sweep_corner_keys(py_spec, "transient", 0, None, {})
        assert np_keys == py_keys

    def test_jobs_and_backend_never_enter_the_address(self, tmp_path):
        """Corner addresses are spawned in the parent, so a store written
        by a jobs=4 thread run serves a jobs=1 serial re-run (and the
        extension executes only the new corner)."""
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        cold = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               jobs=4, backend="thread", cache=store)
        assert cold.provenance.cache == "miss"

        wider = SweepSpec.from_mapping({"cnts_per_trial": (2, 4, 8)})
        delta = run_sweep_study(wider, engine="immunity", trials=20, seed=7,
                                jobs=1, cache=store)
        assert delta.provenance.cache == "partial:2/3"
        assert delta == run_sweep_study(wider, engine="immunity", trials=20,
                                        seed=7)

    def test_process_backend_shares_the_store(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                        jobs=2, backend="process", cache=store)
        wider = SweepSpec.from_mapping({"cnts_per_trial": (2, 4, 8)})
        delta = run_sweep_study(wider, engine="immunity", trials=20, seed=7,
                                cache=store)
        assert delta.provenance.cache == "partial:2/3"


# ---------------------------------------------------------------------------
# The delta contract, end to end
# ---------------------------------------------------------------------------

class TestDeltaRecompute:
    def test_immunity_grid_runs_only_missing_corners(
            self, tmp_path, immunity_counter):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping(
            {"technique": ("vulnerable", "compact"),
             "cnts_per_trial": (2, 4)})
        cold = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               cache=store)
        assert cold.provenance.cache == "miss"
        assert len(immunity_counter) == 4

        wider = SweepSpec.from_mapping(
            {"technique": ("vulnerable", "compact"),
             "cnts_per_trial": (2, 4, 8)})
        del immunity_counter[:]
        delta = run_sweep_study(wider, engine="immunity", trials=20, seed=7,
                                cache=store)
        assert len(immunity_counter) == 2          # only the cnts=8 corners
        assert delta.provenance.cache == "partial:4/6"
        assert delta == run_sweep_study(wider, engine="immunity", trials=20,
                                        seed=7)

    def test_immunity_zip_runs_only_missing_corners(
            self, tmp_path, immunity_counter):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping(
            {"cnts_per_trial": (2, 4), "max_angle_deg": (10.0, 20.0)},
            mode="zip")
        run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                        cache=store)
        wider = SweepSpec.from_mapping(
            {"cnts_per_trial": (2, 4, 8),
             "max_angle_deg": (10.0, 20.0, 30.0)}, mode="zip")
        del immunity_counter[:]
        delta = run_sweep_study(wider, engine="immunity", trials=20, seed=7,
                                cache=store)
        assert len(immunity_counter) == 1
        assert delta.provenance.cache == "partial:2/3"
        assert delta == run_sweep_study(wider, engine="immunity", trials=20,
                                        seed=7)

    def test_transient_grid_runs_only_missing_cells(
            self, tmp_path, transient_counter):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping(
            {"cell": ("INV",), "vdd": (0.9, 1.0)})
        run_sweep_study(spec, engine="transient", cache=store)
        assert len(transient_counter) == 2

        wider = SweepSpec.from_mapping(
            {"cell": ("INV", "NAND2"), "vdd": (0.9, 1.0)})
        del transient_counter[:]
        delta = run_sweep_study(wider, engine="transient", cache=store)
        assert len(transient_counter) == 2         # only the NAND2 corners
        assert delta.provenance.cache == "partial:2/4"
        assert delta == run_sweep_study(wider, engine="transient")

    def test_transient_interior_extension_keeps_the_time_base(
            self, tmp_path, transient_counter):
        """Appending an *interior* vdd leaves the per-cell analytical
        envelope — and therefore the shared time base and the stored
        corners' addresses — untouched."""
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"vdd": (0.9, 1.0)})
        run_sweep_study(spec, engine="transient", cache=store)
        wider = SweepSpec.from_mapping({"vdd": (0.9, 1.0, 0.95)})
        del transient_counter[:]
        delta = run_sweep_study(wider, engine="transient", cache=store)
        assert len(transient_counter) == 1
        assert delta.provenance.cache == "partial:2/3"
        assert delta == run_sweep_study(wider, engine="transient")

    def test_transient_envelope_shift_recomputes_but_stays_identical(
            self, tmp_path):
        """Extending vdd *below* the cached range slows the analytical
        envelope, moving the shared time base: every address changes, the
        whole grid recomputes, and the result still equals the cold full
        run — conservative, never wrong."""
        store = ResultCache(tmp_path / "store")
        run_sweep_study(SweepSpec.from_mapping({"vdd": (0.9, 1.0)}),
                        engine="transient", cache=store)
        wider = SweepSpec.from_mapping({"vdd": (0.9, 1.0, 0.7)})
        delta = run_sweep_study(wider, engine="transient", cache=store)
        assert delta.provenance.cache == "miss"
        assert delta == run_sweep_study(wider, engine="transient")

    def test_transient_zip_runs_only_missing_corners(
            self, tmp_path, transient_counter):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping(
            {"vdd": (0.9, 1.0), "pitch_nm": (5.0, 6.0)}, mode="zip")
        run_sweep_study(spec, engine="transient", cache=store)
        wider = SweepSpec.from_mapping(
            {"vdd": (0.9, 1.0, 0.8), "pitch_nm": (5.0, 6.0, 7.0)},
            mode="zip")
        del transient_counter[:]
        delta = run_sweep_study(wider, engine="transient", cache=store)
        assert len(transient_counter) == 1
        assert delta.provenance.cache == "partial:2/3"
        assert delta == run_sweep_study(wider, engine="transient")

    def test_full_corner_coverage_is_a_hit_without_study_envelope(
            self, tmp_path, immunity_counter):
        """Every corner cached but no study envelope (e.g. the grid was
        filled by other sweeps): zero engine work, status 'hit'."""
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                        cache=store)
        store.prune(study="sweep")                 # drop the envelope only
        del immunity_counter[:]
        warm = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               cache=store)
        assert immunity_counter == []
        assert warm.provenance.cache == "hit"
        assert warm == run_sweep_study(spec, engine="immunity", trials=20,
                                       seed=7)

    def test_cross_spec_overlap_dedups_through_the_corner_store(
            self, tmp_path, transient_counter):
        """Different study-level fingerprints, overlapping grids: the
        overlap is served from the corner store — even with the axis
        values reordered, because transient corners address by resolved
        value (there is no seed)."""
        store = ResultCache(tmp_path / "store")
        run_sweep_study(SweepSpec.from_mapping({"vdd": (0.9, 1.0)}),
                        engine="transient", cache=store)
        del transient_counter[:]
        other = run_sweep_study(
            SweepSpec.from_mapping({"vdd": (1.0, 0.9, 0.95)}),
            engine="transient", cache=store)
        assert len(transient_counter) == 1
        assert other.provenance.cache == "partial:2/3"
        assert other == run_sweep_study(
            SweepSpec.from_mapping({"vdd": (1.0, 0.9, 0.95)}),
            engine="transient")

    def test_immunity_value_reorder_is_a_conservative_miss(
            self, tmp_path, immunity_counter):
        """Reordering an immunity axis's values reassigns the spawn
        positions, so every corner's child seed — and therefore its
        address — changes: the store misses rather than serving metrics
        computed under different entropy.  Spurious miss, never a wrong
        hit."""
        store = ResultCache(tmp_path / "store")
        run_sweep_study(SweepSpec.from_mapping({"cnts_per_trial": (2, 4)}),
                        engine="immunity", trials=20, seed=7, cache=store)
        del immunity_counter[:]
        reordered = run_sweep_study(
            SweepSpec.from_mapping({"cnts_per_trial": (4, 2)}),
            engine="immunity", trials=20, seed=7, cache=store)
        assert len(immunity_counter) == 2
        assert reordered.provenance.cache == "miss"
        assert reordered == run_sweep_study(
            SweepSpec.from_mapping({"cnts_per_trial": (4, 2)}),
            engine="immunity", trials=20, seed=7)

    def test_seed_none_still_bypasses_corner_store(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2,)})
        result = run_sweep_study(spec, engine="immunity", trials=10,
                                 seed=None, cache=store)
        assert result.provenance.cache is None
        assert store.stats().corner_entries == 0


# ---------------------------------------------------------------------------
# Corner-store integrity
# ---------------------------------------------------------------------------

class TestCornerIntegrity:
    def _poison_one_corner(self, store):
        paths = list(store._corner_entries())
        assert paths
        path = paths[0]
        wrapper = json.loads(path.read_text())
        wrapper["payload"] = {"tampered": True}
        path.write_text(json.dumps(wrapper))
        return path

    def test_poisoned_corner_is_evicted_counted_and_recomputed(
            self, tmp_path):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        cold = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               cache=store)
        store.prune(study="sweep")                 # force the corner path
        poisoned = self._poison_one_corner(store)

        again = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                                cache=store)
        assert again == cold                       # recomputed, not served
        assert again.provenance.cache == "partial:1/2"
        stats = store.stats()
        assert stats.corner_corrupt >= 1
        assert poisoned.exists()                   # rewritten by the rerun

    def test_truncated_corner_counts_as_corrupt(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2,)})
        run_sweep_study(spec, engine="immunity", trials=10, seed=7,
                        cache=store)
        path = next(iter(store._corner_entries()))
        path.write_text(path.read_text()[:20])
        assert store.get_corner(path.stem) is None
        assert not path.exists()                   # evicted
        assert store.stats().corner_corrupt == 1

    def test_stats_surface_corner_counters(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        run_sweep_study(spec, engine="immunity", trials=10, seed=7,
                        cache=store)
        stats = store.stats()
        assert stats.corner_entries == 2
        assert stats.corner_misses == 2
        assert stats.corner_bytes > 0
        rendered = str(stats)
        assert "corner entries : 2" in rendered
        as_dict = stats.as_dict()
        assert {"corner_entries", "corner_bytes", "corner_hits",
                "corner_misses", "corner_corrupt"} <= set(as_dict)


# ---------------------------------------------------------------------------
# plan_delta
# ---------------------------------------------------------------------------

class TestPlanDelta:
    def test_partitions_in_corner_order(self):
        plan = plan_delta(["aa", "bb", "cc", "dd"], {"bb", "dd"})
        assert plan.hit_indices == (1, 3)
        assert plan.miss_indices == (0, 2)
        assert (plan.total, plan.hits, plan.misses) == (4, 2, 2)
        assert plan.status == "partial:2/4"

    def test_status_extremes(self):
        assert plan_delta(["aa"], {"aa"}).status == "hit"
        assert plan_delta(["aa"], set()).status == "miss"


# ---------------------------------------------------------------------------
# Bounded prune
# ---------------------------------------------------------------------------

class TestBoundedPrune:
    def _fill(self, store, n=3):
        for cnts in range(2, 2 + n):
            run_sweep_study(
                SweepSpec.from_mapping({"cnts_per_trial": (cnts,)}),
                engine="immunity", trials=10, seed=7, cache=store)

    def test_max_age_keeps_fresh_entries(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        self._fill(store, n=2)
        assert store.prune(max_age_s=3600.0) == 0
        before = store.stats()
        assert before.entries == 2 and before.corner_entries == 2
        assert store.prune(max_age_s=0.0) == 4
        after = store.stats()
        assert after.entries == 0 and after.corner_entries == 0

    def test_max_entries_bounds_each_granularity(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        self._fill(store, n=3)
        removed = store.prune(max_entries=1)
        assert removed == 4                        # 2 studies + 2 corners
        stats = store.stats()
        assert stats.entries == 1 and stats.corner_entries == 1

    def test_max_entries_keeps_the_newest(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        self._fill(store, n=2)
        newest = max(
            ((json.loads(p.read_text())["created"], p)
             for p in store._entries()),
        )[1]
        store.prune(max_entries=1)
        assert newest.exists()

    def test_study_filter_composes_with_bounds(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        self._fill(store, n=2)
        # Only corner envelopes match the pseudo-study, and age 0 drops
        # them all; study entries survive.
        removed = store.prune(study="corner", max_age_s=0.0)
        assert removed == 2
        stats = store.stats()
        assert stats.entries == 2 and stats.corner_entries == 0

    def test_negative_bounds_raise(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        with pytest.raises(CacheError):
            store.prune(max_age_s=-1.0)
        with pytest.raises(CacheError):
            store.prune(max_entries=-1)
