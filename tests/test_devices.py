"""Tests for the CNT/CNFET/MOSFET device models and their calibration."""

import pytest
from hypothesis import given, strategies as st

from repro.devices import (
    CNFET,
    CNFETParameters,
    Chirality,
    DEFAULT_CHIRALITY,
    MOSFET,
    ballistic_on_current,
    calibrated_cnfet_parameters,
    fit_report,
    oxide_capacitance_per_length,
    paper_anchors,
    quantum_capacitance_per_length,
)
from repro.errors import DeviceModelError


class TestCNTPhysics:
    def test_default_chirality_is_semiconducting(self):
        assert DEFAULT_CHIRALITY.is_semiconducting
        assert DEFAULT_CHIRALITY.diameter_nm() == pytest.approx(1.49, rel=0.02)
        assert DEFAULT_CHIRALITY.band_gap_ev() == pytest.approx(0.58, rel=0.05)
        assert 0.25 < DEFAULT_CHIRALITY.threshold_voltage() < 0.32

    @pytest.mark.parametrize("n,m,metallic", [(19, 0, False), (18, 0, True),
                                              (13, 13, True), (17, 3, False)])
    def test_metallic_rule(self, n, m, metallic):
        assert Chirality(n, m).is_metallic is metallic

    def test_invalid_chirality(self):
        with pytest.raises(DeviceModelError):
            Chirality(0, 0)
        with pytest.raises(DeviceModelError):
            Chirality(3, 5)

    def test_quantum_capacitance_magnitude(self):
        # ~400 aF/um is the commonly quoted value.
        assert quantum_capacitance_per_length() == pytest.approx(4e-10, rel=0.25)

    def test_oxide_capacitance_increases_with_dielectric(self):
        low = oxide_capacitance_per_length(3.9, 4.0, 1.5)
        high = oxide_capacitance_per_length(16.0, 4.0, 1.5)
        assert high > low > 0

    def test_ballistic_current_magnitude(self):
        current = ballistic_on_current(1.0, 0.3)
        assert 15e-6 < current < 30e-6

    @given(st.integers(min_value=5, max_value=30))
    def test_band_gap_shrinks_with_diameter(self, n):
        tube = Chirality(n, 0)
        if tube.is_metallic:
            assert tube.band_gap_ev() == 0.0
        else:
            bigger = Chirality(n + 3, 0)
            if not bigger.is_metallic:
                assert bigger.band_gap_ev() < tube.band_gap_ev()


class TestCNFETModel:
    def test_single_tube_has_no_screening(self):
        device = CNFET("n", num_tubes=1, gate_width_nm=32.5)
        assert device.screening == pytest.approx(1.0)

    def test_screening_decreases_with_density(self):
        params = calibrated_cnfet_parameters()
        sparse = CNFET("n", 8, 65.0, parameters=params)
        dense = CNFET("n", 16, 65.0, parameters=params)
        assert dense.screening < sparse.screening <= 1.0
        assert dense.screening < 1.0

    def test_on_current_scales_sublinearly_with_tubes(self):
        params = calibrated_cnfet_parameters()
        one = CNFET("n", 1, 32.5, parameters=params).on_current(1.0)
        six = CNFET("n", 6, 32.5, parameters=params).on_current(1.0)
        assert six > one
        assert six < 6 * one  # screening penalty

    def test_ids_regions(self):
        device = CNFET("n", 4, 65.0, parameters=calibrated_cnfet_parameters())
        assert device.ids(0.0, 1.0) == 0.0                       # off
        assert device.ids(1.0, 0.0) == 0.0                       # no vds
        linear = device.ids(1.0, 0.05)
        saturated = device.ids(1.0, 1.0)
        assert 0 < linear < saturated
        assert saturated == pytest.approx(device.on_current(1.0), rel=1e-6)

    def test_p_device_polarity(self):
        device = CNFET("p", 2, 65.0, parameters=calibrated_cnfet_parameters())
        assert device.ids(-1.0, -1.0) > 0
        assert device.ids(1.0, 1.0) == 0.0

    def test_gate_capacitance_components(self):
        params = calibrated_cnfet_parameters()
        narrow = CNFET("n", 1, 32.5, parameters=params)
        wide = CNFET("n", 1, 325.0, parameters=params)
        assert wide.gate_capacitance() > narrow.gate_capacitance()  # fixed term scales

    def test_effective_resistance(self):
        device = CNFET("n", 6, 32.5, parameters=calibrated_cnfet_parameters())
        assert device.effective_resistance(1.0) > 0

    def test_scaled_device(self):
        device = CNFET("n", 2, 65.0, parameters=calibrated_cnfet_parameters())
        bigger = device.scaled(3.0)
        assert bigger.num_tubes == 6
        assert bigger.gate_width_nm == pytest.approx(195.0)

    def test_invalid_parameters(self):
        with pytest.raises(DeviceModelError):
            CNFETParameters(threshold_voltage=1.5)
        with pytest.raises(DeviceModelError):
            CNFET("x", 1)
        with pytest.raises(DeviceModelError):
            CNFET("n", 0)

    @given(st.integers(min_value=1, max_value=40))
    def test_on_current_monotone_in_tubes(self, tubes):
        params = calibrated_cnfet_parameters()
        current = CNFET("n", tubes, 32.5, parameters=params).on_current(1.0)
        more = CNFET("n", tubes + 1, 32.5, parameters=params).on_current(1.0)
        assert more >= current * 0.90  # dips only slightly past the optimal pitch


class TestMOSFETModel:
    def test_on_current_scales_with_width(self):
        narrow = MOSFET("n", 100.0)
        wide = MOSFET("n", 200.0)
        assert wide.on_current(1.0) == pytest.approx(2 * narrow.on_current(1.0))

    def test_pmos_is_weaker(self):
        nmos = MOSFET("n", 200.0)
        pmos = MOSFET("p", 200.0)
        assert pmos.on_current(1.0) < nmos.on_current(1.0)

    def test_ids_off_below_threshold(self):
        device = MOSFET("n", 200.0)
        assert device.ids(0.2, 1.0) == 0.0

    def test_capacitances_scale_with_width(self):
        assert MOSFET("n", 400.0).gate_capacitance() == pytest.approx(
            2 * MOSFET("n", 200.0).gate_capacitance()
        )

    def test_invalid_width(self):
        with pytest.raises(DeviceModelError):
            MOSFET("n", -5.0)


class TestCalibration:
    def test_anchor_values_recorded(self):
        anchors = paper_anchors()
        assert anchors.fo4_delay_gain_optimal == pytest.approx(4.2)
        assert anchors.optimal_pitch_nm == pytest.approx(5.0)
        assert anchors.edap_gain_headline == pytest.approx(12.0)

    def test_fit_matches_paper_anchors(self):
        report = fit_report()
        anchors = paper_anchors()
        assert report["delay_gain_single_cnt"] == pytest.approx(
            anchors.fo4_delay_gain_single_cnt, rel=0.10
        )
        assert report["energy_gain_single_cnt"] == pytest.approx(
            anchors.fo4_energy_gain_single_cnt, rel=0.10
        )
        assert report["delay_gain_optimal"] == pytest.approx(
            anchors.fo4_delay_gain_optimal, rel=0.10
        )
        assert report["energy_gain_optimal"] == pytest.approx(
            anchors.fo4_energy_gain_optimal, rel=0.15
        )
        assert report["optimal_pitch_nm"] == pytest.approx(
            anchors.optimal_pitch_nm, rel=0.15
        )

    def test_cmos_reference_fo4_is_plausible_for_65nm(self):
        report = fit_report()
        assert 10.0 < report["cmos_fo4_delay_ps"] < 40.0

    def test_calibrated_on_current_is_physical(self):
        params = calibrated_cnfet_parameters()
        assert 15e-6 < params.on_current_per_tube < 35e-6
