"""Tests for the Euler-path engine."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EulerPathError
from repro.euler import (
    Trail,
    euler_path_for_network,
    euler_trails,
    has_euler_path,
)
from repro.logic import Transistor, aoi21, aoi22, aoi31, nand, nor, standard_gate


class TestEulerTrails:
    def test_simple_path(self):
        edges = [("a", "b", "e1"), ("b", "c", "e2")]
        trails = euler_trails(edges, preferred_start="a")
        assert len(trails) == 1
        assert trails[0].nodes == ("a", "b", "c")
        assert trails[0].edges == ("e1", "e2")

    def test_euler_circuit_is_single_trail(self):
        edges = [("a", "b", "e1"), ("b", "c", "e2"), ("c", "a", "e3")]
        trails = euler_trails(edges)
        assert len(trails) == 1
        assert len(trails[0]) == 3

    def test_multigraph_parallel_edges(self):
        # NAND3 pull-up network: three parallel edges between vdd and out.
        edges = [("vdd", "out", f"e{i}") for i in range(3)]
        assert has_euler_path(edges)
        trails = euler_trails(edges, preferred_start="vdd", preferred_end="out")
        assert len(trails) == 1
        assert trails[0].start == "vdd"
        assert trails[0].end == "out"

    def test_four_odd_vertices_need_two_trails(self):
        # K4: every vertex has degree 3, so four odd vertices -> two trails.
        edges = [
            ("a", "b", "e1"), ("a", "c", "e2"), ("a", "d", "e3"),
            ("b", "c", "e4"), ("b", "d", "e5"), ("c", "d", "e6"),
        ]
        assert not has_euler_path(edges)
        trails = euler_trails(edges)
        assert len(trails) == 2
        assert sum(len(t) for t in trails) == len(edges)
        covered = sorted(key for trail in trails for key in trail.edges)
        assert covered == sorted(key for _, _, key in edges)

    def test_disconnected_graph_rejected(self):
        edges = [("a", "b", "e1"), ("c", "d", "e2")]
        assert not has_euler_path(edges)
        with pytest.raises(EulerPathError):
            euler_trails(edges)

    def test_empty_edge_list(self):
        assert euler_trails([]) == []
        assert has_euler_path([])

    def test_trail_validation(self):
        with pytest.raises(EulerPathError):
            Trail(("a", "b"), ())

    def test_trail_reversal(self):
        trail = Trail(("a", "b", "c"), ("e1", "e2"))
        back = trail.reversed()
        assert back.nodes == ("c", "b", "a")
        assert back.edges == ("e2", "e1")

    @given(st.integers(min_value=1, max_value=8))
    def test_parallel_multigraph_always_has_path(self, count):
        edges = [("p", "q", f"e{i}") for i in range(count)]
        trails = euler_trails(edges)
        covered = [key for trail in trails for key in trail.edges]
        assert sorted(covered) == sorted(f"e{i}" for i in range(count))
        # With two nodes the trail count is 1 for any multiplicity: either an
        # Euler path (odd count) or an Euler circuit (even count).
        assert len(trails) == 1


class TestNetworkLinearization:
    @pytest.mark.parametrize(
        "gate_factory",
        [lambda: nand(2), lambda: nand(3), lambda: nor(2), lambda: nor(3),
         aoi21, aoi22, aoi31],
    )
    def test_standard_cells_linearise_in_one_trail(self, gate_factory):
        gate = gate_factory()
        for network in (gate.pun, gate.pdn):
            linear = euler_path_for_network(network)
            assert linear.is_single_trail
            assert linear.gate_count == len(network)
            assert not linear.breaks

    def test_chain_alternates_contacts_and_gates(self):
        gate = nand(3)
        linear = euler_path_for_network(gate.pun)
        kinds = [
            "gate" if isinstance(element, Transistor) else "contact"
            for element in linear.elements
        ]
        assert kinds[0] == "contact"
        assert kinds[-1] == "contact"
        for first, second in zip(kinds, kinds[1:]):
            assert first != second

    def test_nand3_pun_has_redundant_contacts(self):
        gate = nand(3)
        linear = euler_path_for_network(gate.pun)
        nets = linear.contact_nets()
        assert nets.count("vdd") == 2
        assert nets.count("out") == 2
        assert linear.contact_count == 4

    def test_nand3_pdn_is_a_simple_series_walk(self):
        gate = nand(3)
        linear = euler_path_for_network(gate.pdn)
        nets = linear.contact_nets()
        assert nets[0] in ("gnd", "out")
        assert nets[-1] in ("gnd", "out")
        assert linear.gate_count == 3

    def test_every_transistor_sits_between_its_own_nets(self):
        gate = aoi31()
        for network in (gate.pun, gate.pdn):
            linear = euler_path_for_network(network)
            elements = linear.elements
            for index, element in enumerate(elements):
                if isinstance(element, Transistor):
                    left, right = elements[index - 1], elements[index + 1]
                    assert {left, right} == set(element.terminals)

    def test_orientation_prefers_rail_to_output(self):
        gate = nand(2)
        linear = euler_path_for_network(gate.pun)
        nets = linear.contact_nets()
        assert nets[0] == "vdd"

    def test_empty_network_rejected(self):
        from repro.logic.network import TransistorNetwork

        with pytest.raises(EulerPathError):
            euler_path_for_network(TransistorNetwork("nfet", "gnd"))
