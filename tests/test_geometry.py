"""Tests for repro.geometry: primitives, transforms, layout DB and GDSII."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GDSError, GeometryError
from repro.geometry import (
    GDSWriter,
    GDSWriterOptions,
    Layout,
    LayoutCell,
    Orientation,
    Point,
    Polygon,
    Rect,
    Transform,
    bounding_box,
    read_gds_summary,
    total_area,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=32)
positive = st.floats(min_value=0.5, max_value=100.0, allow_nan=False, width=32)


class TestPoint:
    def test_translate_and_distance(self):
        p = Point(1.0, 2.0).translated(3.0, -2.0)
        assert p == Point(4.0, 0.0)
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_rotation_quarters(self):
        assert Point(1.0, 0.0).rotated90() == Point(0.0, 1.0)
        assert Point(1.0, 0.0).rotated90(4) == Point(1.0, 0.0)


class TestRect:
    def test_normalisation(self):
        rect = Rect(5.0, 6.0, 1.0, 2.0)
        assert (rect.x1, rect.y1, rect.x2, rect.y2) == (1.0, 2.0, 5.0, 6.0)

    def test_area_and_center(self):
        rect = Rect.from_size(0, 0, 4, 3)
        assert rect.area == pytest.approx(12.0)
        assert rect.center == Point(2.0, 1.5)

    def test_negative_size_rejected(self):
        with pytest.raises(GeometryError):
            Rect.from_size(0, 0, -1, 2)

    def test_intersection_and_union(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        overlap = a.intersection(b)
        assert overlap == Rect(2, 2, 4, 4)
        assert a.union_bbox(b) == Rect(0, 0, 6, 6)
        assert a.intersection(Rect(10, 10, 12, 12)) is None

    def test_touching_rects_do_not_strictly_intersect(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(2, 0, 4, 2)
        assert not a.intersects(b, strict=True)
        assert a.intersects(b, strict=False)
        assert a.distance_to(b) == pytest.approx(0.0)

    def test_distance_between_separated_rects(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(4, 4, 5, 5)
        assert a.distance_to(b) == pytest.approx(math.hypot(3, 3))

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert not outer.contains_rect(Rect(5, 5, 11, 9))
        assert outer.contains_point(Point(0, 0))
        assert not outer.contains_point(Point(0, 0), strict=True)

    def test_expand_shrink(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.expanded(2) == Rect(-2, -2, 12, 12)
        with pytest.raises(GeometryError):
            rect.expanded(-6)

    @given(finite, finite, positive, positive, finite, finite)
    def test_translation_preserves_area(self, x, y, w, h, dx, dy):
        rect = Rect.from_size(x, y, w, h)
        assert rect.translated(dx, dy).area == pytest.approx(rect.area, rel=1e-6)

    @given(finite, finite, positive, positive)
    def test_intersection_is_contained_in_both(self, x, y, w, h):
        a = Rect.from_size(x, y, w, h)
        b = Rect.from_size(x + w / 2, y + h / 2, w, h)
        overlap = a.intersection(b)
        assert overlap is not None
        assert a.contains_rect(overlap)
        assert b.contains_rect(overlap)


class TestAreaHelpers:
    def test_bounding_box(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, 5, 6, 7)]
        assert bounding_box(rects) == Rect(0, 0, 6, 7)
        assert bounding_box([]) is None

    def test_total_area_counts_overlap_once(self):
        rects = [Rect(0, 0, 4, 4), Rect(2, 0, 6, 4)]
        assert total_area(rects) == pytest.approx(24.0)

    def test_total_area_disjoint(self):
        rects = [Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)]
        assert total_area(rects) == pytest.approx(8.0)

    @given(st.lists(st.tuples(finite, finite, positive, positive), min_size=1, max_size=6))
    def test_total_area_bounds(self, specs):
        rects = [Rect.from_size(x, y, w, h) for x, y, w, h in specs]
        union = total_area(rects)
        total = sum(r.area for r in rects)
        box = bounding_box(rects)
        assert union <= total + 1e-6
        assert union <= box.area + 1e-6
        assert union >= max(r.area for r in rects) - 1e-6


class TestPolygon:
    def test_from_rect_area(self):
        poly = Polygon.from_rect(Rect(0, 0, 3, 2))
        assert poly.area == pytest.approx(6.0)
        assert poly.bbox() == Rect(0, 0, 3, 2)

    def test_point_containment(self):
        poly = Polygon.from_rect(Rect(0, 0, 4, 4))
        assert poly.contains_point(Point(2, 2))
        assert not poly.contains_point(Point(5, 5))

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon((Point(0, 0), Point(1, 1)))


class TestTransform:
    def test_r90_rotation(self):
        transform = Transform(orientation=Orientation.R90)
        assert transform.apply_point(Point(1.0, 0.0)) == Point(0.0, 1.0)

    def test_mirror_then_rotate_swaps_axes(self):
        transform = Transform(orientation=Orientation.MXR90)
        assert transform.apply_point(Point(2.0, 3.0)) == Point(3.0, 2.0)

    def test_rect_stays_axis_aligned(self):
        transform = Transform(dx=10.0, dy=0.0, orientation=Orientation.R90)
        rect = transform.apply_rect(Rect(0, 0, 2, 1))
        assert rect.width == pytest.approx(1.0)
        assert rect.height == pytest.approx(2.0)

    @pytest.mark.parametrize("orientation", list(Orientation))
    def test_composition_matches_sequential_application(self, orientation):
        outer = Transform(dx=3.0, dy=-2.0, orientation=orientation)
        inner = Transform(dx=1.0, dy=5.0, orientation=Orientation.R90)
        composed = outer.compose(inner)
        for point in (Point(0, 0), Point(1, 0), Point(2.5, -1.5)):
            expected = outer.apply_point(inner.apply_point(point))
            got = composed.apply_point(point)
            assert got.x == pytest.approx(expected.x, abs=1e-9)
            assert got.y == pytest.approx(expected.y, abs=1e-9)


class TestLayoutCell:
    def test_add_shapes_and_area(self):
        cell = LayoutCell("test")
        cell.add_rect("metal1", Rect(0, 0, 4, 2))
        cell.add_rect("metal1", Rect(2, 0, 6, 2))
        assert cell.area("metal1") == pytest.approx(12.0)
        assert cell.layers() == ["metal1"]

    def test_degenerate_rect_rejected(self):
        cell = LayoutCell("test")
        with pytest.raises(GeometryError):
            cell.add_rect("metal1", Rect(0, 0, 0, 5))

    def test_boundary_prefers_boundary_layer(self):
        cell = LayoutCell("test")
        cell.add_rect("metal1", Rect(0, 0, 2, 2))
        cell.add_rect("boundary", Rect(0, 0, 10, 10))
        assert cell.boundary() == Rect(0, 0, 10, 10)
        assert cell.area() == pytest.approx(100.0)

    def test_pin_lookup(self):
        cell = LayoutCell("test")
        cell.add_pin("A", Rect(0, 0, 1, 1), "pin", direction="input")
        assert cell.pin("A").direction == "input"
        with pytest.raises(Exception):
            cell.pin("missing")

    def test_empty_cell_has_no_boundary(self):
        with pytest.raises(Exception):
            LayoutCell("empty").boundary()


class TestLayoutHierarchy:
    def _two_level_layout(self):
        layout = Layout("design")
        child = layout.new_cell("child")
        child.add_rect("metal1", Rect(0, 0, 2, 2))
        child.add_pin("A", Rect(0, 0, 1, 1), "pin")
        top = layout.new_cell("top", top=True)
        top.add_instance("child", "u1", dx=10.0, dy=0.0)
        top.add_instance("child", "u2", dx=0.0, dy=10.0, orientation=Orientation.R90)
        return layout

    def test_duplicate_cell_rejected(self):
        layout = Layout("design")
        layout.new_cell("a")
        with pytest.raises(GeometryError):
            layout.new_cell("a")

    def test_flatten_counts_shapes(self):
        layout = self._two_level_layout()
        flat = layout.flatten()
        assert len(flat.shapes("metal1")) == 2
        assert len([p for p in flat.pins if p.name == "A"]) == 2
        shifted = [r for r in flat.shapes("metal1") if r.x1 >= 10.0]
        assert len(shifted) == 1

    def test_unknown_cell_lookup(self):
        layout = Layout("design")
        layout.new_cell("only")
        with pytest.raises(GeometryError):
            layout.cell("missing")


class TestGDSRoundTrip:
    def test_writer_round_trip(self, tmp_path):
        layout = Layout("testlib")
        child = layout.new_cell("leaf")
        child.add_rect("metal1", Rect(0, 0, 4, 2))
        child.add_label("net1", Point(1, 1), "metal1")
        top = layout.new_cell("top", top=True)
        top.add_rect("poly", Rect(0, 0, 2, 10))
        top.add_instance("leaf", "u1", dx=5.0, dy=5.0, orientation=Orientation.MX)

        from repro.tech import cnfet_layer_stack

        writer = GDSWriter(cnfet_layer_stack(), GDSWriterOptions(unit_nm=32.5))
        path = tmp_path / "out.gds"
        writer.write(layout, str(path))
        data = path.read_bytes()
        assert data[:4] != b""

        summary = read_gds_summary(data)
        assert set(summary) == {"leaf", "top"}
        assert summary["leaf"].boundary_count == 1
        assert summary["leaf"].text_count == 1
        assert summary["top"].sref_count == 1
        assert summary["top"].boundary_count == 1

    def test_empty_layout_rejected(self):
        writer = GDSWriter()
        with pytest.raises(GDSError):
            writer.to_bytes(Layout("empty"))

    def test_unknown_layer_gets_default_number(self):
        layout = Layout("lib")
        cell = layout.new_cell("c", top=True)
        cell.add_rect("mystery_layer", Rect(0, 0, 1, 1))
        writer = GDSWriter(options=GDSWriterOptions(default_layer=77))
        summary = read_gds_summary(writer.to_bytes(layout))
        assert summary["c"].layers == (77,)
