"""Tests for the mispositioned-CNT immunity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import assemble_cell, get_annotations
from repro.errors import ImmunityAnalysisError
from repro.geometry import Point, Rect
from repro.immunity import (
    CNTInstance,
    ImmunityChecker,
    compare_techniques,
    nominal_cnts,
    random_mispositioned_cnts,
    run_immunity_trials,
)
from repro.logic import standard_gate


class TestCNTInstance:
    def test_interval_of_vertical_tube_through_rect(self):
        cnt = CNTInstance(Point(1.0, 0.0), Point(1.0, 10.0))
        interval = cnt.intersection_interval(Rect(0, 4, 2, 6))
        assert interval == pytest.approx((0.4, 0.6))

    def test_interval_missing_rect(self):
        cnt = CNTInstance(Point(1.0, 0.0), Point(1.0, 10.0))
        assert cnt.intersection_interval(Rect(5, 0, 6, 10)) is None

    def test_diagonal_tube(self):
        cnt = CNTInstance(Point(0.0, 0.0), Point(10.0, 10.0))
        interval = cnt.intersection_interval(Rect(4, 0, 6, 10))
        assert interval == pytest.approx((0.4, 0.6))

    def test_length_and_points(self):
        cnt = CNTInstance(Point(0, 0), Point(3, 4))
        assert cnt.length == pytest.approx(5.0)
        mid = cnt.point_at(0.5)
        assert (mid.x, mid.y) == (1.5, 2.0)


class TestNominalPopulation:
    def test_nominal_cnts_reproduce_cell_function(self):
        for name in ("INV", "NAND2", "NAND3", "NOR2", "AOI21"):
            gate = standard_gate(name)
            cell = assemble_cell(gate, technique="compact", scheme=1)
            checker = ImmunityChecker(cell.annotations())
            nominal = nominal_cnts(cell.annotations(), pitch=1.0, axis="x")
            table = checker.truth_table(nominal)
            assert table.equivalent_to(gate.expected_truth_table()), name

    def test_nominal_cnts_in_vulnerable_layout_also_work(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="vulnerable", scheme=1)
        checker = ImmunityChecker(cell.annotations())
        nominal = nominal_cnts(cell.annotations(), axis="x")
        assert checker.truth_table(nominal).equivalent_to(gate.expected_truth_table())

    def test_nominal_generation_requires_gates(self):
        from repro.core.spec import CellAnnotations

        with pytest.raises(ImmunityAnalysisError):
            nominal_cnts(CellAnnotations(cell_name="empty"), axis="y")

    def test_invalid_pitch_rejected(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate)
        with pytest.raises(ImmunityAnalysisError):
            nominal_cnts(cell.annotations(), pitch=0.0)


class TestMispositionedGeneration:
    def test_reproducible_with_seed(self):
        cell = assemble_cell(standard_gate("NAND2"))
        annotations = cell.annotations()
        first = random_mispositioned_cnts(annotations, 5, np.random.default_rng(7), axis="x")
        second = random_mispositioned_cnts(annotations, 5, np.random.default_rng(7), axis="x")
        assert [(c.start, c.end) for c in first] == [(c.start, c.end) for c in second]

    def test_tubes_span_the_cell(self):
        cell = assemble_cell(standard_gate("NAND2"))
        annotations = cell.annotations()
        tubes = random_mispositioned_cnts(annotations, 3, np.random.default_rng(1), axis="x")
        extent = cell.cell.boundary()
        for tube in tubes:
            assert tube.mispositioned
            assert tube.length > extent.width

    def test_negative_count_rejected(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            random_mispositioned_cnts(cell.annotations(), -1, np.random.default_rng(0))


class TestImmunityChecker:
    def test_vulnerable_nand2_fails_with_a_bridging_tube(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="vulnerable", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        # Build a tube that runs through the pull-up strip in the gap
        # between the two gate columns, connecting vdd directly to out.
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        gate_rects = [g.rect for g in annotations.gates if g.device == "pfet"]
        gate_rects.sort(key=lambda r: r.x1)
        gap_x = (gate_rects[0].x2 + gate_rects[1].x1) / 2.0
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        bridging = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
        )
        report = checker.check(nominal, [bridging], expected=gate.expected_truth_table())
        assert not report.immune
        assert report.failure_count > 0

    def test_compact_nand2_survives_the_same_attack(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        extent = cell.cell.boundary()
        horizontal = CNTInstance(
            Point(extent.x1 - 1.0, extent.center.y),
            Point(extent.x2 + 1.0, extent.center.y),
            mispositioned=True,
        )
        report = checker.check(nominal, [horizontal], expected=gate.expected_truth_table())
        assert report.immune

    def test_checker_requires_contacts(self):
        from repro.core.spec import CellAnnotations

        with pytest.raises(ImmunityAnalysisError):
            ImmunityChecker(CellAnnotations(cell_name="empty"))


class TestMonteCarlo:
    def test_figure2_comparison(self):
        results = compare_techniques("NAND2", trials=60, cnts_per_trial=4, seed=11)
        assert results["compact"].immune
        assert results["baseline"].immune
        assert not results["vulnerable"].immune
        assert results["vulnerable"].failure_rate > 0.05

    def test_compact_cells_are_fully_immune(self):
        for name in ("NAND3", "NOR2", "AOI21"):
            cell = assemble_cell(standard_gate(name), technique="compact", scheme=1)
            result = run_immunity_trials(cell, trials=40, cnts_per_trial=5, seed=3)
            assert result.immune, name
            assert result.failure_rate == 0.0

    def test_scheme2_compact_cells_are_also_immune(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=2)
        result = run_immunity_trials(cell, trials=40, cnts_per_trial=5, seed=5)
        assert result.immune

    def test_result_accounting(self):
        cell = assemble_cell(standard_gate("INV"), technique="compact")
        result = run_immunity_trials(cell, trials=10, cnts_per_trial=2, seed=1)
        assert result.trials == 10
        assert result.cnts_per_trial == 2
        assert 0.0 <= result.failure_rate <= 1.0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_compact_nand2_immune_for_any_seed(self, seed):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=1)
        result = run_immunity_trials(cell, trials=15, cnts_per_trial=6, seed=seed)
        assert result.immune


class TestMetallicCNTExtension:
    """The paper assumes metallic CNTs are removed during processing
    (Section II); the checker exposes a hook to stress-test that assumption."""

    def test_metallic_tube_ignores_gates(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        metallic = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
            metallic=True,
        )
        report = checker.check(nominal, [metallic], expected=gate.expected_truth_table())
        # A metallic tube across the pull-up strip shorts Vdd to the output
        # no matter what the gates do, so even the immune layout fails.
        assert not report.immune

    def test_semiconducting_twin_of_same_tube_is_harmless(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        semiconducting = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
            metallic=False,
        )
        report = checker.check(nominal, [semiconducting],
                               expected=gate.expected_truth_table())
        assert report.immune

    def test_metallic_fraction_breaks_even_immune_layouts(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=1)
        clean = run_immunity_trials(cell, trials=40, cnts_per_trial=4, seed=9,
                                    metallic_fraction=0.0)
        dirty = run_immunity_trials(cell, trials=40, cnts_per_trial=4, seed=9,
                                    metallic_fraction=0.5)
        assert clean.immune
        assert dirty.failure_rate > clean.failure_rate

    def test_metallic_fraction_validation(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            random_mispositioned_cnts(cell.annotations(), 2,
                                      np.random.default_rng(0),
                                      metallic_fraction=1.5)
