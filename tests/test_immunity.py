"""Tests for the mispositioned-CNT immunity analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import assemble_cell, get_annotations
from repro.errors import ImmunityAnalysisError
from repro.geometry import Point, Rect
from repro.immunity import (
    CNTBatch,
    CNTInstance,
    ImmunityChecker,
    compare_techniques,
    nominal_cnts,
    random_mispositioned_cnts,
    run_immunity_trials,
    sample_mispositioned_batch,
    sweep,
)
from repro.logic import standard_gate


class TestCNTInstance:
    def test_interval_of_vertical_tube_through_rect(self):
        cnt = CNTInstance(Point(1.0, 0.0), Point(1.0, 10.0))
        interval = cnt.intersection_interval(Rect(0, 4, 2, 6))
        assert interval == pytest.approx((0.4, 0.6))

    def test_interval_missing_rect(self):
        cnt = CNTInstance(Point(1.0, 0.0), Point(1.0, 10.0))
        assert cnt.intersection_interval(Rect(5, 0, 6, 10)) is None

    def test_diagonal_tube(self):
        cnt = CNTInstance(Point(0.0, 0.0), Point(10.0, 10.0))
        interval = cnt.intersection_interval(Rect(4, 0, 6, 10))
        assert interval == pytest.approx((0.4, 0.6))

    def test_length_and_points(self):
        cnt = CNTInstance(Point(0, 0), Point(3, 4))
        assert cnt.length == pytest.approx(5.0)
        mid = cnt.point_at(0.5)
        assert (mid.x, mid.y) == (1.5, 2.0)


class TestNominalPopulation:
    def test_nominal_cnts_reproduce_cell_function(self):
        for name in ("INV", "NAND2", "NAND3", "NOR2", "AOI21"):
            gate = standard_gate(name)
            cell = assemble_cell(gate, technique="compact", scheme=1)
            checker = ImmunityChecker(cell.annotations())
            nominal = nominal_cnts(cell.annotations(), pitch=1.0, axis="x")
            table = checker.truth_table(nominal)
            assert table.equivalent_to(gate.expected_truth_table()), name

    def test_nominal_cnts_in_vulnerable_layout_also_work(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="vulnerable", scheme=1)
        checker = ImmunityChecker(cell.annotations())
        nominal = nominal_cnts(cell.annotations(), axis="x")
        assert checker.truth_table(nominal).equivalent_to(gate.expected_truth_table())

    def test_nominal_generation_requires_gates(self):
        from repro.core.spec import CellAnnotations

        with pytest.raises(ImmunityAnalysisError):
            nominal_cnts(CellAnnotations(cell_name="empty"), axis="y")

    def test_invalid_pitch_rejected(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate)
        with pytest.raises(ImmunityAnalysisError):
            nominal_cnts(cell.annotations(), pitch=0.0)


class TestMispositionedGeneration:
    def test_reproducible_with_seed(self):
        cell = assemble_cell(standard_gate("NAND2"))
        annotations = cell.annotations()
        first = random_mispositioned_cnts(annotations, 5, np.random.default_rng(7), axis="x")
        second = random_mispositioned_cnts(annotations, 5, np.random.default_rng(7), axis="x")
        assert [(c.start, c.end) for c in first] == [(c.start, c.end) for c in second]

    def test_tubes_span_the_cell(self):
        cell = assemble_cell(standard_gate("NAND2"))
        annotations = cell.annotations()
        tubes = random_mispositioned_cnts(annotations, 3, np.random.default_rng(1), axis="x")
        extent = cell.cell.boundary()
        for tube in tubes:
            assert tube.mispositioned
            assert tube.length > extent.width

    def test_negative_count_rejected(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            random_mispositioned_cnts(cell.annotations(), -1, np.random.default_rng(0))


class TestImmunityChecker:
    def test_vulnerable_nand2_fails_with_a_bridging_tube(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="vulnerable", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        # Build a tube that runs through the pull-up strip in the gap
        # between the two gate columns, connecting vdd directly to out.
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        gate_rects = [g.rect for g in annotations.gates if g.device == "pfet"]
        gate_rects.sort(key=lambda r: r.x1)
        gap_x = (gate_rects[0].x2 + gate_rects[1].x1) / 2.0
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        bridging = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
        )
        report = checker.check(nominal, [bridging], expected=gate.expected_truth_table())
        assert not report.immune
        assert report.failure_count > 0

    def test_compact_nand2_survives_the_same_attack(self):
        gate = standard_gate("NAND2")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        extent = cell.cell.boundary()
        horizontal = CNTInstance(
            Point(extent.x1 - 1.0, extent.center.y),
            Point(extent.x2 + 1.0, extent.center.y),
            mispositioned=True,
        )
        report = checker.check(nominal, [horizontal], expected=gate.expected_truth_table())
        assert report.immune

    def test_checker_requires_contacts(self):
        from repro.core.spec import CellAnnotations

        with pytest.raises(ImmunityAnalysisError):
            ImmunityChecker(CellAnnotations(cell_name="empty"))


class TestMonteCarlo:
    def test_figure2_comparison(self):
        results = compare_techniques("NAND2", trials=60, cnts_per_trial=4, seed=11)
        assert results["compact"].immune
        assert results["baseline"].immune
        assert not results["vulnerable"].immune
        assert results["vulnerable"].failure_rate > 0.05

    def test_compact_cells_are_fully_immune(self):
        for name in ("NAND3", "NOR2", "AOI21"):
            cell = assemble_cell(standard_gate(name), technique="compact", scheme=1)
            result = run_immunity_trials(cell, trials=40, cnts_per_trial=5, seed=3)
            assert result.immune, name
            assert result.failure_rate == 0.0

    def test_scheme2_compact_cells_are_also_immune(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=2)
        result = run_immunity_trials(cell, trials=40, cnts_per_trial=5, seed=5)
        assert result.immune

    def test_result_accounting(self):
        cell = assemble_cell(standard_gate("INV"), technique="compact")
        result = run_immunity_trials(cell, trials=10, cnts_per_trial=2, seed=1)
        assert result.trials == 10
        assert result.cnts_per_trial == 2
        assert 0.0 <= result.failure_rate <= 1.0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_compact_nand2_immune_for_any_seed(self, seed):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=1)
        result = run_immunity_trials(cell, trials=15, cnts_per_trial=6, seed=seed)
        assert result.immune


class TestBatchedEngine:
    """The vectorized engine must be indistinguishable from the scalar
    reference walk: identical truth tables, identical Monte Carlo results,
    regardless of chunking."""

    def test_batch_sampling_matches_historical_loop(self):
        """Independent oracle for the seed contract: re-draw the same tubes
        with the seed-era one-uniform-at-a-time loop and demand bitwise
        equality (``random_mispositioned_cnts`` is now a wrapper over the
        batch sampler, so comparing the two public entry points would be
        tautological)."""
        import math

        from repro.immunity.cnts import _cell_extent

        annotations = assemble_cell(standard_gate("NAND2")).annotations()
        max_angle_deg = 15.0
        batch = sample_mispositioned_batch(
            annotations, 6, np.random.default_rng(3), axis="x",
            max_angle_deg=max_angle_deg, metallic_fraction=0.5,
        )

        rng = np.random.default_rng(3)
        region = _cell_extent(annotations)
        span = math.hypot(region.width, region.height) * 1.2
        half = span / 2.0
        for i in range(6):
            x = rng.uniform(region.x1, region.x2)
            y = rng.uniform(region.y1, region.y2)
            angle = math.radians(rng.uniform(-max_angle_deg, max_angle_deg))
            direction = (math.cos(angle), math.sin(angle))  # axis="x"
            metallic = bool(rng.uniform() < 0.5)
            # The draws themselves are bit-identical; the trig-derived
            # endpoints get a tight tolerance because vectorized
            # np.sin/np.cos may differ from libm by a ULP on some builds.
            assert batch.starts[i, 0] == pytest.approx(
                x - direction[0] * half, rel=1e-12, abs=1e-12)
            assert batch.starts[i, 1] == pytest.approx(
                y - direction[1] * half, rel=1e-12, abs=1e-12)
            assert batch.ends[i, 0] == pytest.approx(
                x + direction[0] * half, rel=1e-12, abs=1e-12)
            assert batch.ends[i, 1] == pytest.approx(
                y + direction[1] * half, rel=1e-12, abs=1e-12)
            assert bool(batch.metallic[i]) == metallic

    def test_cnt_batch_round_trip(self):
        # Mixed nominal + mispositioned + metallic flags must survive the
        # array round trip per tube.
        tubes = [
            CNTInstance(Point(0.0, 1.0), Point(5.0, 2.0), mispositioned=True),
            CNTInstance(Point(1.0, -1.0), Point(2.0, 7.0), mispositioned=True,
                        metallic=True),
            CNTInstance(Point(3.0, 0.0), Point(3.0, 9.0)),
        ]
        batch = CNTBatch.from_instances(tubes)
        assert len(batch) == 3
        assert batch.to_instances() == tubes

    def test_output_codes_does_not_mutate_adjacency(self):
        annotations = assemble_cell(standard_gate("NAND2")).annotations()
        checker = ImmunityChecker(annotations)
        batch = CNTBatch.from_instances(nominal_cnts(annotations, axis="x"))
        adjacency = checker.adjacency_matrices(checker.pair_conduction(batch))
        before = adjacency.copy()
        checker.output_codes(adjacency)
        assert (adjacency == before).all()

    def test_cnt_batch_equality_is_elementwise(self):
        tubes = [
            CNTInstance(Point(0.0, 1.0), Point(5.0, 2.0), mispositioned=True),
            CNTInstance(Point(1.0, -1.0), Point(2.0, 7.0), mispositioned=True,
                        metallic=True),
        ]
        batch = CNTBatch.from_instances(tubes)
        assert batch == CNTBatch.from_instances(tubes)
        assert batch != CNTBatch.from_instances(tubes[:1])
        assert batch != CNTBatch.from_instances(list(reversed(tubes)))
        assert batch != "not a batch"
        with pytest.raises(TypeError):
            hash(batch)

    def test_cnt_batch_shape_validation(self):
        with pytest.raises(ImmunityAnalysisError):
            CNTBatch(np.zeros((3, 2)), np.zeros((2, 2)), np.zeros(3, dtype=bool))
        with pytest.raises(ImmunityAnalysisError):
            CNTBatch(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(2, dtype=bool))

    def test_cnt_batch_scalar_flags_broadcast(self):
        batch = CNTBatch(np.zeros((3, 2)), np.ones((3, 2)), metallic=True,
                         mispositioned=False)
        assert batch.metallic.shape == (3,) and batch.metallic.all()
        assert batch.mispositioned.shape == (3,) \
            and not batch.mispositioned.any()

    @pytest.mark.parametrize("technique", ["vulnerable", "baseline", "compact"])
    def test_truth_table_matches_reference(self, technique):
        cell = assemble_cell(standard_gate("NAND3"), technique=technique, scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        rng = np.random.default_rng(17)
        for _ in range(25):
            strays = random_mispositioned_cnts(
                annotations, 5, rng, axis="x", metallic_fraction=0.25
            )
            batched = checker.truth_table(nominal + strays)
            reference = checker.truth_table_reference(nominal + strays)
            assert batched.inputs == reference.inputs
            assert batched.outputs == reference.outputs

    def test_engines_identical_for_fixed_seed(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="vulnerable",
                             scheme=1)
        loop = run_immunity_trials(cell, trials=120, cnts_per_trial=4,
                                   seed=2009, engine="loop")
        batch = run_immunity_trials(cell, trials=120, cnts_per_trial=4,
                                    seed=2009, engine="batch")
        assert loop == batch
        assert loop.failures > 0

    def test_chunk_size_does_not_change_results(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="vulnerable",
                             scheme=1)
        results = [
            run_immunity_trials(cell, trials=50, cnts_per_trial=4, seed=13,
                                chunk_size=chunk)
            for chunk in (1, 7, 50, 1000)
        ]
        assert all(result == results[0] for result in results)

    def test_same_seed_same_result_across_runs(self):
        cell = assemble_cell(standard_gate("NAND3"), technique="vulnerable",
                             scheme=1)
        first = run_immunity_trials(cell, trials=80, cnts_per_trial=4, seed=99)
        second = run_immunity_trials(cell, trials=80, cnts_per_trial=4, seed=99)
        assert first == second

    def test_invalid_engine_rejected(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            run_immunity_trials(cell, trials=5, engine="spice")

    def test_invalid_chunk_size_rejected(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            run_immunity_trials(cell, trials=5, chunk_size=0)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_engine_parity_for_any_seed(self, seed):
        cell = assemble_cell(standard_gate("NAND2"), technique="vulnerable",
                             scheme=1)
        loop = run_immunity_trials(cell, trials=20, cnts_per_trial=5,
                                   seed=seed, engine="loop",
                                   metallic_fraction=0.2)
        batch = run_immunity_trials(cell, trials=20, cnts_per_trial=5,
                                    seed=seed, engine="batch",
                                    metallic_fraction=0.2)
        assert loop == batch


class TestSeedSharing:
    """compare_techniques must attack every technique with the same defect
    populations (the Figure 2 apples-to-apples contract)."""

    def test_each_technique_sees_the_shared_seed(self):
        results = compare_techniques("NAND2", trials=60, cnts_per_trial=4,
                                     seed=21)
        for technique, result in results.items():
            cell = assemble_cell(standard_gate("NAND2"), technique=technique,
                                 scheme=1)
            direct = run_immunity_trials(cell, trials=60, cnts_per_trial=4,
                                         seed=21)
            assert result == direct, technique

    def test_comparison_reproducible(self):
        first = compare_techniques("NAND2", trials=40, seed=5)
        second = compare_techniques("NAND2", trials=40, seed=5)
        assert first == second

    def test_comparison_engines_agree(self):
        batch = compare_techniques("NAND2", trials=40, seed=5, engine="batch")
        loop = compare_techniques("NAND2", trials=40, seed=5, engine="loop")
        assert batch == loop


class TestSweep:
    def test_cartesian_coverage_and_order(self):
        points = sweep(gates=("NAND2",), techniques=("vulnerable", "compact"),
                       cnts_per_trial=(2, 4), trials=20, seed=3)
        assert len(points) == 4
        assert [(p.technique, p.cnts_per_trial) for p in points] == [
            ("vulnerable", 2), ("compact", 2), ("vulnerable", 4), ("compact", 4),
        ]

    def test_techniques_share_populations_per_point(self):
        """Points differing only in technique must reuse one child seed:
        running the sweep twice (and with different technique subsets) gives
        identical results for the shared points."""
        both = sweep(gates=("NAND2",), techniques=("vulnerable", "compact"),
                     cnts_per_trial=(3,), trials=30, seed=8)
        compact_only = sweep(gates=("NAND2",), techniques=("compact",),
                             cnts_per_trial=(3,), trials=30, seed=8)
        assert both[1].result == compact_only[0].result

    def test_seed_sequence_argument_not_mutated(self):
        """sweep() must not advance a caller-supplied SeedSequence's spawn
        counter: identical back-to-back calls give identical results."""
        seed_sequence = np.random.SeedSequence(8)
        kwargs = dict(gates=("NAND2",), techniques=("vulnerable",),
                      cnts_per_trial=(3,), trials=30, seed=seed_sequence)
        first = sweep(**kwargs)
        second = sweep(**kwargs)
        assert [p.result for p in first] == [p.result for p in second]
        assert seed_sequence.n_children_spawned == 0

    def test_sweep_children_do_not_alias_caller_spawns(self):
        """sweep() derives its children under a reserved spawn key, so a
        caller who spawns their own children from the same SeedSequence gets
        independent defect populations, not sweep's."""
        root = np.random.SeedSequence(2009)
        child = root.spawn(1)[0]
        cell = assemble_cell(standard_gate("NAND2"), technique="vulnerable",
                             scheme=1)
        own = run_immunity_trials(cell, trials=40, seed=child)
        point = sweep(gates=("NAND2",), techniques=("vulnerable",),
                      trials=40, seed=np.random.SeedSequence(2009))[0]
        assert own != point.result

    def test_process_pool_matches_serial(self):
        kwargs = dict(gates=("NAND2",), techniques=("vulnerable", "compact"),
                      cnts_per_trial=(2, 4), trials=25, seed=4)
        assert sweep(**kwargs) == sweep(workers=2, **kwargs)

    def test_metallic_fraction_dimension(self):
        points = sweep(gates=("NAND2",), techniques=("compact",),
                       cnts_per_trial=(4,), metallic_fraction=(0.0, 0.5),
                       trials=40, seed=9)
        clean, dirty = points
        assert clean.result.immune
        assert dirty.result.failure_rate > clean.result.failure_rate


class TestMetallicCNTExtension:
    """The paper assumes metallic CNTs are removed during processing
    (Section II); the checker exposes a hook to stress-test that assumption."""

    def test_metallic_tube_ignores_gates(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        metallic = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
            metallic=True,
        )
        report = checker.check(nominal, [metallic], expected=gate.expected_truth_table())
        # A metallic tube across the pull-up strip shorts Vdd to the output
        # no matter what the gates do, so even the immune layout fails.
        assert not report.immune

    def test_semiconducting_twin_of_same_tube_is_harmless(self):
        gate = standard_gate("INV")
        cell = assemble_cell(gate, technique="compact", scheme=1)
        annotations = cell.annotations()
        checker = ImmunityChecker(annotations)
        nominal = nominal_cnts(annotations, axis="x")
        pun_active = next(a for a in annotations.actives if a.doping == "p")
        mid_y = (pun_active.rect.y1 + pun_active.rect.y2) / 2.0
        semiconducting = CNTInstance(
            Point(pun_active.rect.x1 - 1.0, mid_y),
            Point(pun_active.rect.x2 + 1.0, mid_y),
            mispositioned=True,
            metallic=False,
        )
        report = checker.check(nominal, [semiconducting],
                               expected=gate.expected_truth_table())
        assert report.immune

    def test_metallic_fraction_breaks_even_immune_layouts(self):
        cell = assemble_cell(standard_gate("NAND2"), technique="compact", scheme=1)
        clean = run_immunity_trials(cell, trials=40, cnts_per_trial=4, seed=9,
                                    metallic_fraction=0.0)
        dirty = run_immunity_trials(cell, trials=40, cnts_per_trial=4, seed=9,
                                    metallic_fraction=0.5)
        assert clean.immune
        assert dirty.failure_rate > clean.failure_rate

    def test_metallic_fraction_validation(self):
        cell = assemble_cell(standard_gate("INV"))
        with pytest.raises(ImmunityAnalysisError):
            random_mispositioned_cnts(cell.annotations(), 2,
                                      np.random.default_rng(0),
                                      metallic_fraction=1.5)
