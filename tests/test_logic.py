"""Tests for repro.logic: expressions, truth tables, transistor networks."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionParseError, LogicError, NetworkError
from repro.logic import (
    GateNetworks,
    SPLeaf,
    SPParallel,
    SPSeries,
    TruthTable,
    all_standard_gates,
    and_,
    aoi21,
    aoi31,
    expressions_equivalent,
    from_pulldown,
    inverter,
    nand,
    nor,
    not_,
    oai22,
    or_,
    parse_expression,
    sp_from_expression,
    standard_gate,
    var,
)


class TestExpressions:
    def test_parse_and_str_round_trip(self):
        expr = parse_expression("(A*B + C)'")
        again = parse_expression(str(expr))
        assert expressions_equivalent(expr, again)

    @pytest.mark.parametrize(
        "text,assignment,expected",
        [
            ("A*B", {"A": True, "B": True}, True),
            ("A*B", {"A": True, "B": False}, False),
            ("A + B", {"A": False, "B": True}, True),
            ("!(A&B|C)", {"A": True, "B": True, "C": False}, False),
            ("(A*B+C)'", {"A": False, "B": False, "C": False}, True),
            ("A B + C", {"A": True, "B": True, "C": False}, True),  # implicit AND
            ("A''", {"A": True}, True),
        ],
    )
    def test_evaluation(self, text, assignment, expected):
        assert parse_expression(text).evaluate(assignment) is expected

    def test_parse_errors_point_at_location(self):
        with pytest.raises(ExpressionParseError):
            parse_expression("A + ")
        with pytest.raises(ExpressionParseError):
            parse_expression("(A + B")
        with pytest.raises(ExpressionParseError):
            parse_expression("A ) B")

    def test_constant_folding(self):
        assert str(and_(var("A"), True)) == "A"
        assert and_(var("A"), False).evaluate({"A": True}) is False
        assert or_(var("A"), True).evaluate({"A": False}) is True
        assert str(not_(not_(var("A")))) == "A"

    def test_operator_overloads(self):
        expr = (var("A") & var("B")) | ~var("C")
        assert expr.evaluate({"A": False, "B": False, "C": False}) is True

    def test_missing_variable_raises(self):
        with pytest.raises(LogicError):
            parse_expression("A*B").evaluate({"A": True})

    def test_invalid_variable_name(self):
        with pytest.raises(LogicError):
            var("2bad")

    @given(st.tuples(st.booleans(), st.booleans(), st.booleans()))
    def test_de_morgan_property(self, bits):
        a, b, c = bits
        assignment = {"A": a, "B": b, "C": c}
        lhs = parse_expression("!(A*B*C)")
        rhs = parse_expression("!A + !B + !C")
        assert lhs.evaluate(assignment) == rhs.evaluate(assignment)


class TestTruthTable:
    def test_from_expression(self):
        table = TruthTable.from_expression(parse_expression("A*B"))
        assert table.inputs == ("A", "B")
        assert table.outputs == (False, False, False, True)

    def test_equivalence_ignores_input_order(self):
        left = TruthTable.from_expression(parse_expression("A*B"), inputs=["A", "B"])
        right = TruthTable.from_expression(parse_expression("A*B"), inputs=["B", "A"])
        assert left.equivalent_to(right)

    def test_differing_rows(self):
        nand2 = TruthTable.from_expression(parse_expression("(A*B)'"))
        and2 = TruthTable.from_expression(parse_expression("A*B"))
        assert len(nand2.differing_rows(and2)) == 4

    def test_incomplete_table_detection(self):
        table = TruthTable(("A",), (True, None))
        assert not table.is_complete()

    def test_row_count_validation(self):
        with pytest.raises(LogicError):
            TruthTable(("A", "B"), (True, False))

    def test_format_contains_all_rows(self):
        table = TruthTable.from_expression(parse_expression("A + B"))
        text = table.format()
        assert text.count("\n") >= 5
        assert "A B | out" in text


class TestSeriesParallel:
    def test_nand_tree_shapes(self):
        gate = nand(3)
        assert isinstance(gate.pdn_tree, SPSeries)
        assert isinstance(gate.pun_tree, SPParallel)
        assert gate.pdn_tree.leaf_count() == 3
        assert gate.pun_tree.leaf_count() == 3

    def test_dual_is_involution(self):
        gate = aoi21()
        assert str(gate.pun_tree.dual()) == str(gate.pdn_tree)

    def test_negated_expression_rejected(self):
        with pytest.raises(NetworkError):
            sp_from_expression(parse_expression("A'*B"))

    def test_conduction_matches_expression(self):
        expr = parse_expression("A*B + C")
        tree = sp_from_expression(expr)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("ABC", bits))
            assert tree.conducts(assignment, active_high=True) == expr.evaluate(assignment)

    def test_pfet_conduction_is_complement_controlled(self):
        tree = sp_from_expression(parse_expression("A*B"))
        assert tree.conducts({"A": False, "B": False}, active_high=False)
        assert not tree.conducts({"A": True, "B": False}, active_high=False)


class TestGateNetworks:
    @pytest.mark.parametrize("name", sorted(all_standard_gates()))
    def test_all_standard_gates_are_complementary(self, name):
        gate = standard_gate(name)
        assert gate.is_complementary()
        assert gate.truth_table().equivalent_to(gate.expected_truth_table())

    def test_nand3_structure(self):
        gate = nand(3)
        assert len(gate.pdn) == 3
        assert len(gate.pun) == 3
        assert gate.pdn.device == "nfet"
        assert gate.pun.device == "pfet"
        # Series PDN introduces two internal nodes.
        assert len(gate.pdn.internal_nets()) == 2
        assert len(gate.pun.internal_nets()) == 0

    def test_aoi31_matches_figure4_function(self):
        gate = aoi31()
        table = gate.truth_table()
        assert table.row({"A": True, "B": True, "C": True, "D": False}) is False
        assert table.row({"A": False, "B": True, "C": True, "D": False}) is True
        assert table.row({"A": False, "B": False, "C": False, "D": True}) is False

    def test_degrees_of_nand3_pun(self):
        gate = nand(3)
        assert gate.pun.degree("vdd") == 3
        assert gate.pun.degree("out") == 3

    def test_custom_gate_from_pulldown(self):
        gate = from_pulldown("AOI211", "A*B + C + D")
        assert gate.is_complementary()
        assert set(gate.inputs) == {"A", "B", "C", "D"}

    def test_transistor_width_override(self):
        gate = nand(2)
        widened = gate.pdn.with_widths({"MN1": 3.0})
        assert widened.transistors[0].width == pytest.approx(3.0)
        assert widened.transistors[1].width == pytest.approx(1.0)

    def test_invalid_fanin_rejected(self):
        with pytest.raises(LogicError):
            nand(1)
        with pytest.raises(LogicError):
            nor(0)

    def test_unknown_standard_gate(self):
        with pytest.raises(LogicError):
            standard_gate("XNOR9")

    def test_inverter_truth_table(self):
        gate = inverter()
        assert gate.output_value({"A": True}) is False
        assert gate.output_value({"A": False}) is True

    @given(st.integers(min_value=2, max_value=6))
    def test_nand_transistor_count_property(self, fanin):
        gate = nand(fanin)
        assert gate.transistor_count == 2 * fanin
        assert gate.is_complementary()

    @given(st.integers(min_value=2, max_value=6), st.tuples(*([st.booleans()] * 6)))
    def test_nor_function_property(self, fanin, bits):
        gate = nor(fanin)
        assignment = dict(zip(gate.inputs, bits[:fanin]))
        expected = not any(assignment.values())
        assert gate.output_value(assignment) is expected


class TestOAIGates:
    def test_oai22_function(self):
        gate = oai22()
        table = gate.truth_table()
        assert table.row({"A": True, "B": False, "C": False, "D": True}) is False
        assert table.row({"A": False, "B": False, "C": True, "D": True}) is True
