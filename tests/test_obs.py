"""``repro.obs``: tracing is observation-only, end to end.

The contracts under test (PR 10):

* **observation-only** — every engine produces byte-identical
  ``StudyResult.to_json()`` output with tracing on vs off; spans record
  what happened without touching payloads, fingerprints, or seeds;
* **truthful counters** — a warm delta sweep's trace counters equal the
  planner's own accounting (``partial:<hits>/<total>`` provenance);
* **one envelope** — trace documents carry ``repro-trace/v1`` and
  validate against ``docs/repro_trace.schema.json`` with the same
  dependency-free validator CI uses;
* **service surfaces** — ``GET /metrics`` reports pool health plus the
  registry snapshot, and ``GET /jobs/<id>/trace`` serves the per-job
  trace with the usual typed-error status codes.
"""

from __future__ import annotations

import http.client
import importlib.util
import io
import json
import os
import threading
import time

import pytest

from repro.obs import (MetricsRegistry, Tracer, current_tracer, registry,
                       reset_registry, span, trace_counters)
from repro.obs import trace as obs_trace
from repro.obs.trace import TRACE_SCHEMA, summarize_trace
from repro.runtime import ResultCache
from repro.study import SweepSpec, run_sweep_study
from repro.study.cli import main as cli_main
from repro.study.registry import run_study
from repro.service import ReproService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE_SCHEMA_PATH = os.path.join(REPO_ROOT, "docs", "repro_trace.schema.json")
VALIDATOR_PATH = os.path.join(REPO_ROOT, "tools", "validate_repro_json.py")

POLL_TIMEOUT_S = 60.0


def _validate(document):
    """Violations of the trace schema, via the CI validator itself."""
    spec = importlib.util.spec_from_file_location("_validator", VALIDATOR_PATH)
    validator = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(validator)
    with open(TRACE_SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    return validator.validate(document, schema)


def _traced(fn, name="test"):
    """Run ``fn`` under an active tracer; return (result, trace doc)."""
    tracer = Tracer(name)
    with tracer.activate():
        result = fn()
    return result, tracer.to_document()


def run_cli(*argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = cli_main(list(argv), stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


# ---------------------------------------------------------------------------
# Tracer and registry primitives
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_parentage_and_attributes(self):
        tracer = Tracer("t", flavor="unit")
        with tracer.activate():
            with span("outer", layer="study") as outer:
                with span("inner") as inner:
                    obs_trace.annotate(corners=3)
                    obs_trace.add("cache.hits", 2)
                    obs_trace.event("cache.evict", key="k1")
        document = tracer.to_document()
        assert document["schema"] == TRACE_SCHEMA
        assert document["attributes"] == {"flavor": "unit"}
        spans = {entry["name"]: entry for entry in document["spans"]}
        assert spans["outer"]["parent"] == -1
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["attributes"] == {"layer": "study"}
        assert spans["inner"]["attributes"] == {"corners": 3}
        assert spans["inner"]["counters"] == {"cache.hits": 2}
        assert [e["name"] for e in spans["inner"]["events"]] == ["cache.evict"]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_helpers_are_noops_without_an_active_tracer(self):
        assert current_tracer() is None
        with span("nothing") as open_span:
            assert open_span is None
        obs_trace.annotate(ignored=True)
        obs_trace.add("ignored", 1)
        obs_trace.event("ignored")

    def test_trace_counters_sums_across_spans(self):
        tracer = Tracer("t")
        with tracer.activate():
            with span("a"):
                obs_trace.add("cache.hits", 2)
            with span("b"):
                obs_trace.add("cache.hits", 1)
                obs_trace.add("cache.misses", 1)
        totals = trace_counters(tracer.to_document())
        assert totals == {"cache.hits": 3, "cache.misses": 1}


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        metrics = MetricsRegistry()
        metrics.inc("jobs", 2)
        metrics.inc("jobs")
        metrics.observe("latency_s", 0.002, buckets=(0.001, 0.01, 0.1))
        metrics.observe("latency_s", 5.0, buckets=(0.001, 0.01, 0.1))
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"jobs": 3}
        histogram = snapshot["histograms"]["latency_s"]
        assert histogram["count"] == 2
        assert histogram["sum"] == pytest.approx(5.002)
        assert sum(histogram["counts"]) == 2
        assert histogram["counts"][-1] == 1      # 5.0 overflows into +inf
        metrics.reset()
        assert metrics.snapshot() == {"counters": {}, "histograms": {}}

    def test_process_registry_is_resettable(self):
        reset_registry()
        registry().inc("probe", 7)
        assert registry().snapshot()["counters"]["probe"] == 7
        reset_registry()
        assert "probe" not in registry().snapshot()["counters"]


# ---------------------------------------------------------------------------
# Observation-only: bit-identical payloads, traced vs untraced
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_run_study_payload_is_identical_under_tracing(self):
        untraced = run_study("fig3")
        traced, document = _traced(lambda: run_study("fig3"))
        assert traced.to_json() == untraced.to_json()
        assert any(entry["name"] == "study:fig3"
                   for entry in document["spans"])

    @pytest.mark.parametrize("engine,axes,params", [
        ("immunity", {"cnts_per_trial": (2, 4)}, {"trials": 20, "seed": 7}),
        ("transient", {"vdd": (0.9, 1.0)}, {}),
    ])
    def test_sweep_payload_is_identical_under_tracing(
            self, engine, axes, params):
        spec = SweepSpec.from_mapping(axes)
        untraced = run_sweep_study(spec, engine=engine, **params)
        traced, document = _traced(
            lambda: run_sweep_study(spec, engine=engine, **params))
        assert traced.to_json() == untraced.to_json()
        root = next(entry for entry in document["spans"]
                    if entry["name"] == f"sweep:{engine}")
        assert root["attributes"]["engine"] == engine

    def test_cached_sweep_is_identical_under_tracing(self, tmp_path):
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        kwargs = dict(engine="immunity", trials=20, seed=7)
        untraced = run_sweep_study(
            spec, cache=ResultCache(tmp_path / "plain"), **kwargs)
        traced, _ = _traced(lambda: run_sweep_study(
            spec, cache=ResultCache(tmp_path / "traced"), **kwargs))
        assert traced.to_json() == untraced.to_json()


# ---------------------------------------------------------------------------
# Truthful counters: the trace agrees with the delta planner
# ---------------------------------------------------------------------------


class TestDeltaTraceCounters:
    def test_warm_delta_counters_match_partial_provenance(self, tmp_path):
        store = ResultCache(tmp_path / "store")
        kwargs = dict(engine="immunity", trials=20, seed=7, cache=store)
        run_sweep_study(
            SweepSpec.from_mapping({"cnts_per_trial": (2, 4)}), **kwargs)

        wider = SweepSpec.from_mapping({"cnts_per_trial": (2, 4, 8)})
        delta, document = _traced(lambda: run_sweep_study(wider, **kwargs))

        assert delta.provenance.cache == "partial:2/3"
        totals = trace_counters(document)
        assert totals["cache.corner_hits"] == 2
        assert totals["cache.corner_misses"] == 1
        plan = next(entry for entry in document["spans"]
                    if entry["name"] == "sweep.plan")
        assert plan["attributes"].items() >= {
            "hits": 2, "misses": 1, "status": "partial:2/3"}.items()
        execute = next(entry for entry in document["spans"]
                       if entry["name"] == "sweep.execute")
        assert execute["attributes"]["corners"] == 1


# ---------------------------------------------------------------------------
# Envelope: schema validation and the CLI surfaces
# ---------------------------------------------------------------------------


class TestTraceEnvelope:
    def test_sweep_trace_validates_against_checked_in_schema(self):
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        _, document = _traced(
            lambda: run_sweep_study(spec, engine="immunity", trials=20,
                                    seed=7))
        assert _validate(document) == []

    def test_cli_trace_flag_writes_a_valid_envelope(self, tmp_path):
        target = tmp_path / "trace.json"
        code, _, err = run_cli(
            "sweep", "--engine", "immunity", "--axis", "cnts_per_trial=2,4",
            "--trials", "20", "--seed", "7", "--json", "-",
            "--trace", str(target))
        assert code == 0
        assert f"trace written: {target}" in err
        document = json.loads(target.read_text())
        assert document["schema"] == TRACE_SCHEMA
        assert document["name"] == "sweep:immunity"
        assert _validate(document) == []

    def test_cli_trace_summarize_round_trip(self, tmp_path):
        target = tmp_path / "trace.json"
        assert run_cli("run", "fig3", "--trace", str(target))[0] == 0
        code, out, _ = run_cli("trace", "summarize", str(target))
        assert code == 0
        assert "run:fig3" in out
        assert "study:fig3" in out

    def test_cli_trace_summarize_rejects_non_trace_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "something-else"}))
        code, _, err = run_cli("trace", "summarize", str(bogus))
        assert code == 2
        assert "error:" in err

    def test_summarize_trace_renders_counters(self):
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        _, document = _traced(
            lambda: run_sweep_study(spec, engine="immunity", trials=20,
                                    seed=7))
        rendered = summarize_trace(document)
        assert "sweep:immunity" in rendered
        assert "scheduler.task" in rendered


# ---------------------------------------------------------------------------
# Service surfaces: GET /metrics and GET /jobs/<id>/trace
# ---------------------------------------------------------------------------


class Client:
    def __init__(self, service):
        self.host, self.port = service.server_address[:2]

    def json(self, method, path, body=None):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=POLL_TIMEOUT_S)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def poll(self, job_id):
        deadline = time.monotonic() + POLL_TIMEOUT_S
        while True:
            status, document = self.json("GET", f"/jobs/{job_id}")
            assert status == 200
            if document["status"] in ("done", "failed", "cancelled"):
                return document
            assert time.monotonic() < deadline, \
                f"job {job_id} stuck in {document['status']}"
            time.sleep(0.02)


@pytest.fixture
def service(tmp_path):
    running = ReproService(port=0, cache=tmp_path / "cache", workers=2)
    threading.Thread(target=running.serve_forever, daemon=True).start()
    yield running
    running.close()


@pytest.fixture
def client(service):
    return Client(service)


class TestServiceObservability:
    def test_metrics_document_shape(self, client):
        status, document = client.json("GET", "/metrics")
        assert status == 200
        assert document["schema"] == "repro-metrics/v1"
        assert document["workers"] == 2
        assert document["uptime_s"] > 0
        assert 0.0 <= document["worker_utilization"] <= 1.0
        assert set(document["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"}
        assert {"counters", "histograms"} <= set(document["metrics"])

    def test_job_trace_round_trip(self, client):
        status, submitted = client.json("POST", "/jobs", {"study": "fig3"})
        assert status == 201
        job_id = submitted["id"]
        assert client.poll(job_id)["status"] == "done"

        status, document = client.json("GET", f"/jobs/{job_id}/trace")
        assert status == 200
        assert document["schema"] == TRACE_SCHEMA
        assert document["name"] == f"job:{job_id}"
        assert document["attributes"]["job"] == job_id
        names = [entry["name"] for entry in document["spans"]]
        assert "job.run" in names
        assert "study:fig3" in names
        assert _validate(document) == []

        status, metrics = client.json("GET", "/metrics")
        assert status == 200
        assert metrics["jobs"]["done"] >= 1
        latency = metrics["metrics"]["histograms"]["service.queue_latency_s"]
        assert latency["count"] >= 1

    def test_trace_of_unknown_job_is_404(self, client):
        status, document = client.json("GET", "/jobs/job-999999/trace")
        assert status == 404
        assert document["error"]["type"] == "JobNotFound"

    def test_trace_before_completion_is_409(self, client, monkeypatch):
        """Until the worker runs the job there is no trace to serve."""
        import functools

        import repro.analysis.experiments as experiments

        real = experiments.run_fig3_nand3
        release = threading.Event()

        @functools.wraps(real)
        def gated(*args, **kwargs):
            assert release.wait(POLL_TIMEOUT_S), "gate never released"
            return real(*args, **kwargs)

        monkeypatch.setattr(experiments, "run_fig3_nand3", gated)
        _, submitted = client.json("POST", "/jobs", {"study": "fig3"})
        try:
            status, document = client.json(
                "GET", f"/jobs/{submitted['id']}/trace")
            assert status == 409
            assert document["error"]["type"] == "JobStateError"
        finally:
            release.set()
        assert client.poll(submitted["id"])["status"] == "done"
        assert client.json("GET", f"/jobs/{submitted['id']}/trace")[0] == 200

    def test_job_document_does_not_inline_the_trace(self, client):
        _, submitted = client.json("POST", "/jobs", {"study": "fig3"})
        final = client.poll(submitted["id"])
        assert "trace" not in final
        assert "trace_document" not in final
