"""The ``python -m repro`` CLI: list/run/sweep, JSON envelope, schema."""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.analysis.experiments import run_fig3_nand3
from repro.errors import StudyError
from repro.study import StudyResult, decode
from repro.study.cli import _parse_assignment, main
from repro.study.results import RESULT_SCHEMA

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCHEMA_PATH = os.path.join(REPO_ROOT, "docs", "repro_result.schema.json")
VALIDATOR_PATH = os.path.join(REPO_ROOT, "tools", "validate_repro_json.py")


def run_cli(*argv):
    stdout, stderr = io.StringIO(), io.StringIO()
    code = main(list(argv), stdout=stdout, stderr=stderr)
    return code, stdout.getvalue(), stderr.getvalue()


class TestListCommand:
    def test_lists_every_figure(self):
        code, out, _ = run_cli("list")
        assert code == 0
        for name in ("table1", "fig2", "fig3", "fig4", "fig7", "fig8", "edp"):
            assert name in out

    def test_json_listing(self):
        code, out, _ = run_cli("list", "--json")
        assert code == 0
        studies = json.loads(out)
        assert {"name", "figure", "description", "aliases"} <= set(studies[0])


class TestRunCommand:
    def test_text_output_default(self):
        code, out, _ = run_cli("run", "fig3")
        assert code == 0
        assert "NAND3 compaction" in out

    def test_json_to_stdout_roundtrips(self):
        code, out, _ = run_cli("run", "fig3", "--json", "-")
        assert code == 0
        document = json.loads(out)
        assert document["schema"] == RESULT_SCHEMA
        assert document["study"] == "fig3"
        restored = StudyResult.from_json_dict(document)
        assert restored.to_dict() == run_fig3_nand3().to_dict()

    def test_json_payload_equals_legacy_dict(self):
        """Acceptance: the CLI emits the exact pre-redesign payload."""
        code, out, _ = run_cli("run", "fig3", "--json", "-")
        assert code == 0
        payload = decode(json.loads(out)["payload"])
        assert payload == run_fig3_nand3().to_dict()

    def test_json_to_file(self, tmp_path):
        target = tmp_path / "fig4.json"
        code, out, _ = run_cli("run", "fig4", "--json", str(target))
        assert code == 0
        document = json.loads(target.read_text())
        assert document["study"] == "fig4"

    def test_seed_and_trials_forwarded(self):
        code, out, _ = run_cli("run", "fig2", "--seed", "7", "--trials", "20",
                               "--json", "-")
        assert code == 0
        document = json.loads(out)
        assert document["provenance"]["seed"] == 7
        assert document["provenance"]["params"]["trials"] == 20

    def test_param_overrides(self):
        code, out, _ = run_cli("run", "fig3", "--param", "unit_width=6",
                               "--json", "-")
        assert code == 0
        assert json.loads(out)["provenance"]["params"]["unit_width"] == 6

    def test_alias_resolution(self):
        code, out, _ = run_cli("run", "nand3")
        assert code == 0
        assert "NAND3" in out

    def test_trailing_comma_makes_single_element_sequence(self):
        code, out, _ = run_cli("run", "fo4_transient",
                               "--param", "tube_counts=4,", "--json", "-")
        assert code == 0
        document = json.loads(out)
        assert document["provenance"]["params"]["tube_counts"] == {
            "__tuple__": [4]
        }
        restored = StudyResult.from_json_dict(document)
        assert restored.provenance.params["tube_counts"] == (4,)
        assert len(restored.sweep) == 1
        assert restored.sweep[0].num_tubes == 4

    def test_unknown_study_fails_cleanly(self):
        code, _, err = run_cli("run", "not_a_figure")
        assert code == 2
        assert "Unknown study" in err

    def test_seed_rejected_for_unseeded_study(self):
        code, _, err = run_cli("run", "fig3", "--seed", "1")
        assert code == 2
        assert "takes no seed" in err


class TestAssignmentParsing:
    @pytest.mark.parametrize("text, expected", [
        ("flag=true", True),
        ("flag=FALSE", False),
        ("opt=none", None),
        ("opt=Null", None),
        ("n=4", 4),
        ("x=0.5", 0.5),
        ("name=compact", "compact"),
        ("seq=4,", (4,)),
        ("seq=1,2.5,abc", (1, 2.5, "abc")),
        ("flags=true,false", (True, False)),
        ("mixed=1,none,TRUE", (1, None, True)),
    ])
    def test_literal_coercion(self, text, expected):
        key, value = _parse_assignment(text)
        assert value == expected
        assert type(value) is type(expected)

    @pytest.mark.parametrize("text", ["nonsense", "=3", "x=", "  =  ", ","])
    def test_malformed_raises_study_error(self, text):
        with pytest.raises(StudyError):
            _parse_assignment(text)

    @pytest.mark.parametrize("argv", [
        ("run", "fig3", "--param", "nonsense"),
        ("run", "fig3", "--param", "x="),
        ("run", "fig3", "--param", "=3"),
        ("sweep", "--axis", "cnts_per_trial=2", "--set", "nonsense"),
        ("sweep", "--axis", "cnts_per_trial=2", "--set", "x="),
    ])
    def test_malformed_values_exit_2_without_traceback(self, argv):
        """Satellite: malformed --param/--set values are a one-line
        `error:` message and exit code 2, never a traceback."""
        code, out, err = run_cli(*argv)
        assert code == 2
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_flag_named_in_message(self):
        _, _, err_param = run_cli("run", "fig3", "--param", "bad")
        assert "--param" in err_param
        _, _, err_set = run_cli("sweep", "--axis", "cnts_per_trial=2",
                                "--set", "bad")
        assert "--set" in err_set

    def test_none_literal_reaches_the_runner(self):
        code, out, _ = run_cli(
            "run", "characterization", "--param", "corners=none",
            "--param", "gates=INV,", "--param", "drive_strengths=1,",
            "--param", "load_capacitances_f=1e-15,", "--json", "-",
        )
        assert code == 0
        params = json.loads(out)["provenance"]["params"]
        # The literal was coerced to Python None, so the runner resolved
        # its default corner map instead of choking on the string "none".
        assert params["corners"] != "none"
        assert params["gates"] == {"__tuple__": ["INV"]}


class TestRuntimeFlags:
    def test_cache_miss_then_hit(self, tmp_path):
        store = str(tmp_path / "store")
        code, out, err = run_cli("run", "fig3", "--json", "-",
                                 "--cache", store)
        assert code == 0
        first = json.loads(out)
        assert first["provenance"]["cache"] == "miss"
        assert "cache miss" in err
        code, out, err = run_cli("run", "fig3", "--json", "-",
                                 "--cache", store)
        assert code == 0
        second = json.loads(out)
        assert second["provenance"]["cache"] == "hit"
        assert "cache hit" in err
        assert first["payload"] == second["payload"]

    def test_env_var_enables_and_no_cache_disables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        code, out, _ = run_cli("run", "fig3", "--json", "-")
        assert json.loads(out)["provenance"]["cache"] == "miss"
        code, out, _ = run_cli("run", "fig3", "--json", "-", "--no-cache")
        assert json.loads(out)["provenance"]["cache"] is None

    def test_cache_stats_reports_the_hit(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli("run", "fig3", "--json", "-", "--cache", store)
        run_cli("run", "fig3", "--json", "-", "--cache", store)
        code, out, _ = run_cli("cache", "stats", "--cache", store)
        assert code == 0
        assert "hits         : 1" in out
        assert "misses       : 1" in out
        code, out, _ = run_cli("cache", "stats", "--cache", store, "--json")
        stats = json.loads(out)
        assert stats["entries"] == 1 and stats["hits"] == 1

    def test_cache_prune(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli("run", "fig3", "--json", "-", "--cache", store)
        code, out, _ = run_cli("cache", "prune", "--cache", store)
        assert code == 0
        assert "pruned 1 entry" in out

    def test_incremental_sweep_is_the_default_with_a_cache(self, tmp_path):
        store = str(tmp_path / "store")
        base = ("sweep", "--engine", "immunity",
                "--trials", "15", "--seed", "7", "--json", "-",
                "--cache", store)
        code, _, err = run_cli(*base, "--axis", "cnts_per_trial=2,4")
        assert code == 0
        assert "cache miss" in err
        code, out, err = run_cli(*base, "--axis", "cnts_per_trial=2,4,8")
        assert code == 0
        assert "cache partial:2/3" in err
        merged = json.loads(out)
        merged["provenance"]["cache"] = None
        code, cold, _ = run_cli(
            "sweep", "--engine", "immunity", "--trials", "15",
            "--seed", "7", "--json", "-",
            "--axis", "cnts_per_trial=2,4,8")
        assert code == 0
        assert merged["payload"] == json.loads(cold)["payload"]

    def test_cache_stats_reports_corner_counters(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli("sweep", "--engine", "immunity",
                "--axis", "cnts_per_trial=2,4",
                "--trials", "15", "--seed", "7", "--json", "-",
                "--cache", store)
        code, out, _ = run_cli("cache", "stats", "--cache", store)
        assert code == 0
        assert "corner entries : 2" in out
        assert "corner misses  : 2" in out
        code, out, _ = run_cli("cache", "stats", "--cache", store, "--json")
        stats = json.loads(out)
        assert stats["corner_entries"] == 2
        assert stats["corner_misses"] == 2

    def test_cache_prune_bounds(self, tmp_path):
        store = str(tmp_path / "store")
        run_cli("sweep", "--engine", "immunity",
                "--axis", "cnts_per_trial=2,4",
                "--trials", "15", "--seed", "7", "--json", "-",
                "--cache", store)
        code, out, _ = run_cli("cache", "prune", "--cache", store,
                               "--max-age", "3600")
        assert code == 0
        assert "pruned 0 entries" in out
        code, out, _ = run_cli("cache", "prune", "--cache", store,
                               "--max-entries", "1")
        assert code == 0
        assert "pruned 1 entry" in out     # 1 study kept, 1 of 2 corners cut
        code, out, _ = run_cli("cache", "prune", "--cache", store,
                               "--max-age", "0")
        assert code == 0
        assert "pruned 2 entries" in out

    def test_cache_prune_rejects_negative_bounds(self, tmp_path):
        store = str(tmp_path / "store")
        for flag, value in (("--max-age", "-1"), ("--max-entries", "-5")):
            code, _, err = run_cli("cache", "prune", "--cache", store,
                                   flag, value)
            assert code == 2
            assert err.startswith("error:")
            assert flag in err

    def test_sweep_jobs_matches_serial_output(self):
        argv = ("sweep", "--engine", "immunity",
                "--axis", "technique=vulnerable,compact",
                "--trials", "15", "--seed", "7", "--json", "-")
        _, serial, _ = run_cli(*argv)
        _, sharded, _ = run_cli(*argv, "--jobs", "2", "--backend", "thread")
        assert json.loads(serial)["payload"] == json.loads(sharded)["payload"]

    def test_batch_command_dedups_and_hits(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps([
            {"study": "fig3"},
            {"study": "fig3"},
        ]))
        store = str(tmp_path / "store")
        code, out, _ = run_cli("batch", str(manifest), "--cache", store)
        assert code == 0
        assert "dedup" in out and "miss" in out
        code, out, _ = run_cli("batch", str(manifest), "--cache", store)
        assert code == 0
        assert "1 hits" in out
        code, out, _ = run_cli("batch", str(manifest), "--cache", store,
                               "--json", "-")
        document = json.loads(out)
        assert document["study"] == "manifest"

    def test_batch_missing_manifest_fails_cleanly(self, tmp_path):
        code, _, err = run_cli("batch", str(tmp_path / "absent.json"))
        assert code == 2
        assert err.startswith("error: ")


class TestSweepCommand:
    def test_immunity_sweep_json(self):
        code, out, _ = run_cli(
            "sweep", "--engine", "immunity",
            "--axis", "cnts_per_trial=2,4",
            "--axis", "technique=vulnerable,compact",
            "--trials", "20", "--seed", "7", "--json", "-",
        )
        assert code == 0
        document = json.loads(out)
        assert document["study"] == "sweep"
        restored = StudyResult.from_json_dict(document)
        assert len(restored.records) == 4
        assert restored.engine == "immunity"

    def test_transient_sweep_with_fixed_values(self):
        code, out, _ = run_cli(
            "sweep", "--engine", "transient",
            "--axis", "vdd=0.9,1.0", "--set", "cell=INV", "--json", "-",
        )
        assert code == 0
        restored = StudyResult.from_json_dict(json.loads(out))
        assert len(restored.records) == 2
        assert all(r.metrics["worst_delay_s"] > 0 for r in restored.records)

    def test_bad_axis_fails_cleanly(self):
        code, _, err = run_cli("sweep", "--axis", "nonsense=1,2")
        assert code == 2
        assert "does not understand axes" in err

    def test_transient_sweep_rejects_seed_and_trials(self):
        code, _, err = run_cli(
            "sweep", "--engine", "transient", "--axis", "vdd=0.9,1.0",
            "--seed", "42",
        )
        assert code == 2
        assert "takes no --seed/--trials" in err


class TestSchemaValidation:
    @pytest.mark.parametrize("study", ["fig3", "table1"])
    def test_cli_output_validates_against_checked_in_schema(self, study):
        _, out, _ = run_cli("run", study, "--json", "-")
        process = subprocess.run(
            [sys.executable, VALIDATOR_PATH, SCHEMA_PATH, "-"],
            input=out, capture_output=True, text=True,
        )
        assert process.returncode == 0, process.stderr

    def test_validator_rejects_broken_documents(self):
        process = subprocess.run(
            [sys.executable, VALIDATOR_PATH, SCHEMA_PATH, "-"],
            input=json.dumps({"schema": "wrong", "study": "fig3"}),
            capture_output=True, text=True,
        )
        assert process.returncode == 1
        assert "invalid" in process.stderr

    def test_module_entry_point(self):
        """`python -m repro list` works headlessly."""
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert process.returncode == 0, process.stderr
        assert "fig7" in process.stdout
