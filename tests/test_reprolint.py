"""Tests for ``repro.lint`` — the AST-based contract linter.

Three layers of coverage:

* per-rule positive/negative tests against the snippets under
  ``tests/fixtures/reprolint/`` (each rule must fire on its violation
  fixture and stay silent on its clean counterpart),
* the self-clean gate: linting the shipped ``src/`` tree produces
  zero findings,
* the CLI contract: ``--select``/``--ignore``, JSON output, inline
  suppression comments, exit codes, and the no-third-party-imports
  guarantee that lets CI run the linter before installing numpy.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.lint import PARSE_ERROR, all_rules, lint_paths, resolve_rules
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "reprolint"

RULE_IDS = [f"RPL{n:03d}" for n in range(1, 11)]


def _fixture(rule_id: str, kind: str) -> Path:
    """Resolve a fixture path; scoped rules use a directory, flat rules
    a single ``.py`` file."""
    base = FIXTURES / rule_id.lower()
    as_file = base / f"{kind}.py"
    as_dir = base / kind
    return as_file if as_file.exists() else as_dir


def _rules_hit(path: Path, select=None):
    report = lint_paths([str(path)], select=select)
    return {finding.rule for finding in report.findings}


# ---------------------------------------------------------------------------
# Per-rule fixtures
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_violation_fixture_fires(self, rule_id):
        path = _fixture(rule_id, "violation")
        assert path.exists(), f"missing violation fixture for {rule_id}"
        assert _rules_hit(path, select=[rule_id]) == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_is_silent(self, rule_id):
        path = _fixture(rule_id, "clean")
        assert path.exists(), f"missing clean fixture for {rule_id}"
        assert _rules_hit(path, select=[rule_id]) == set()

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_passes_all_rules(self, rule_id):
        # The clean snippets must not trip *any* rule — otherwise a
        # fixture meant as a negative example for one rule hides a
        # positive for another.
        assert _rules_hit(_fixture(rule_id, "clean")) == set()

    def test_violation_exit_code_is_two(self):
        report = lint_paths([str(_fixture("RPL001", "violation"))])
        assert report.exit_code == 2

    def test_clean_exit_code_is_zero(self):
        report = lint_paths([str(_fixture("RPL001", "clean"))])
        assert report.exit_code == 0


# ---------------------------------------------------------------------------
# Self-clean gate
# ---------------------------------------------------------------------------


class TestSelfClean:
    def test_shipped_src_tree_is_clean(self):
        report = lint_paths([str(SRC_DIR)])
        rendered = "\n".join(f.render() for f in report.findings)
        assert not report.findings, f"src/ has lint findings:\n{rendered}"
        assert report.exit_code == 0
        # Sanity: the run actually covered the tree and ran every rule.
        assert report.files > 50
        assert list(report.rules) == RULE_IDS

    def test_linter_lints_itself(self):
        report = lint_paths([str(SRC_DIR / "repro" / "lint")])
        assert not report.findings


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------


class TestEngine:
    def test_resolve_rules_select(self):
        rules = resolve_rules(select=["RPL003"])
        assert [rule.id for rule in rules] == ["RPL003"]

    def test_resolve_rules_ignore(self):
        rules = resolve_rules(ignore=["RPL006", "RPL008"])
        assert [rule.id for rule in rules] == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL007",
            "RPL009", "RPL010",
        ]

    def test_resolve_rules_unknown_id(self):
        with pytest.raises(LintError):
            resolve_rules(select=["RPL999"])

    def test_missing_path_raises(self):
        with pytest.raises(LintError):
            lint_paths([str(FIXTURES / "does-not-exist")])

    def test_syntax_error_reports_rpl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n", encoding="utf-8")
        report = lint_paths([str(bad)])
        assert [f.rule for f in report.findings] == [PARSE_ERROR]
        assert report.exit_code == 2

    def test_findings_sorted_and_rendered(self):
        report = lint_paths([str(_fixture("RPL008", "violation"))])
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)
        rendered = report.findings[0].render()
        assert "RPL008" in rendered
        assert rendered.count(":") >= 3  # path:line:col: RULE message

    def test_every_rule_has_summary(self):
        for rule in all_rules():
            assert rule.summary, f"{rule.id} has no summary"


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_inline_disable_hides_finding(self):
        report = lint_paths([str(FIXTURES / "suppressed.py")])
        assert [f.rule for f in report.findings] == ["RPL006"]
        assert report.findings[0].line == 21  # the uncommented violation
        assert report.suppressed == 2

    def test_disable_all(self, tmp_path):
        snippet = tmp_path / "allowed.py"
        snippet.write_text(
            "def f(x, into=[]):  # reprolint: disable=all\n"
            "    into.append(x)\n"
            "    return into\n",
            encoding="utf-8",
        )
        report = lint_paths([str(snippet)])
        assert not report.findings
        assert report.suppressed == 1

    def test_parse_errors_cannot_be_suppressed(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:  # reprolint: disable=all\n",
                       encoding="utf-8")
        report = lint_paths([str(bad)])
        assert [f.rule for f in report.findings] == [PARSE_ERROR]


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


class TestCli:
    def _run(self, *argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        code = main(list(argv), stdout=stdout, stderr=stderr)
        return code, stdout.getvalue(), stderr.getvalue()

    def test_clean_path_exits_zero(self):
        code, out, _ = self._run(str(_fixture("RPL006", "clean")))
        assert code == 0
        assert "clean" in out

    def test_findings_exit_two(self):
        code, out, _ = self._run(str(_fixture("RPL006", "violation")))
        assert code == 2
        assert "RPL006" in out

    def test_select_narrows_rules(self):
        code, out, _ = self._run(
            str(_fixture("RPL008", "violation")), "--select", "RPL006")
        assert code == 0
        assert "RPL008" not in out

    def test_ignore_drops_rule(self):
        code, _, _ = self._run(
            str(_fixture("RPL008", "violation")), "--ignore", "RPL008")
        assert code == 0

    def test_comma_separated_ids(self):
        code, _, _ = self._run(
            str(_fixture("RPL008", "violation")),
            "--ignore", "rpl006,rpl008")
        assert code == 0

    def test_json_output(self):
        code, out, _ = self._run(
            str(_fixture("RPL006", "violation")), "--format", "json")
        assert code == 2
        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RPL006"}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}

    def test_json_clean_output(self):
        code, out, _ = self._run(
            str(_fixture("RPL006", "clean")), "--format", "json")
        assert code == 0
        assert json.loads(out)["findings"] == []

    def test_unknown_rule_exits_one(self):
        code, _, err = self._run("--select", "RPL999", str(SRC_DIR))
        assert code == 1
        assert "RPL999" in err

    def test_missing_path_exits_one(self):
        code, _, err = self._run(str(FIXTURES / "nope"))
        assert code == 1
        assert "error:" in err

    def test_list_rules(self):
        code, out, _ = self._run("--list-rules")
        assert code == 0
        for rule_id in RULE_IDS:
            assert rule_id in out


# ---------------------------------------------------------------------------
# Dependency-freeness: CI runs the linter before numpy exists
# ---------------------------------------------------------------------------


class TestNoThirdPartyImports:
    def test_cli_runs_without_numpy(self, tmp_path):
        # A poisoned numpy shadows the real one; if repro.lint (or the
        # lazy repro package root) imported it, the subprocess would
        # crash instead of reporting a clean tree.
        (tmp_path / "numpy.py").write_text(
            "raise ImportError('reprolint must not import numpy')\n",
            encoding="utf-8",
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path), str(SRC_DIR)])
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint",
             str(_fixture("RPL006", "clean"))],
            capture_output=True, text=True, env=env, cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout


# ---------------------------------------------------------------------------
# RPL007 project-level behaviour on synthetic trees
# ---------------------------------------------------------------------------


class TestResultDispatchRule:
    def _tree(self, tmp_path, registry_source):
        study = tmp_path / "study"
        study.mkdir()
        (study / "registry.py").write_text(
            textwrap.dedent(registry_source), encoding="utf-8")
        return tmp_path

    def test_ghost_study_flagged(self, tmp_path):
        tree = self._tree(tmp_path, """\
            class StudyResult:
                study_name = ""

            class StudyDefinition:
                def __init__(self, name):
                    self.name = name

            DEFS = [StudyDefinition("orphan")]
            """)
        report = lint_paths([str(tree)], select=["RPL007"])
        assert any("orphan" in f.message for f in report.findings)

    def test_matching_tree_clean(self, tmp_path):
        tree = self._tree(tmp_path, """\
            class StudyResult:
                study_name = ""

            class OrphanResult(StudyResult):
                study_name = "orphan"

            class StudyDefinition:
                def __init__(self, name):
                    self.name = name

            DEFS = [StudyDefinition("orphan")]
            """)
        report = lint_paths([str(tree)], select=["RPL007"])
        assert not report.findings
