"""The runtime layer: scheduler determinism, result cache, manifests."""

import dataclasses
import json
import os

import numpy as np
import pytest

import repro.analysis.experiments as experiments
from repro.errors import CacheError, RuntimeLayerError, StudyError
from repro.runtime import (
    ManifestResult,
    ResultCache,
    as_cache,
    plan_shards,
    resolve_backend,
    resolve_jobs,
    run_manifest,
    run_tasks,
    shard_indices,
    study_fingerprint,
    sweep_fingerprint,
    with_cache_status,
)
from repro.study import StudyResult, SweepSpec, run_study, run_sweep_study


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_stable_across_calls(self):
        assert study_fingerprint("fig3") == study_fingerprint("fig3")
        assert study_fingerprint("fig2", {"trials": 20, "seed": 7}) == \
            study_fingerprint("fig2", {"seed": 7, "trials": 20})

    def test_sensitive_to_every_input(self):
        base = study_fingerprint("fig2", {"trials": 20})
        assert study_fingerprint("fig3", {"trials": 20}) != base
        assert study_fingerprint("fig2", {"trials": 21}) != base
        assert study_fingerprint("fig2", {"trials": 20, "seed": 7}) != base

    def test_execution_params_excluded(self):
        assert study_fingerprint("immunity_sweep", {"workers": 4}) == \
            study_fingerprint("immunity_sweep")
        assert study_fingerprint("immunity_sweep", {"jobs": 2}) == \
            study_fingerprint("immunity_sweep", {"backend": "thread"})

    def test_seed_sequences_fingerprint_by_value(self):
        a = study_fingerprint("fig2", {"seed": np.random.SeedSequence(7)})
        b = study_fingerprint("fig2", {"seed": np.random.SeedSequence(7)})
        c = study_fingerprint("fig2", {"seed": np.random.SeedSequence(8)})
        assert a == b != c

    def test_sweep_fingerprint_covers_spec(self):
        spec_a = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        spec_b = SweepSpec.from_mapping({"cnts_per_trial": (2, 8)})
        a = sweep_fingerprint(spec_a, "immunity", 20, 7, {})
        assert a == sweep_fingerprint(spec_a, "immunity", 20, 7, {})
        assert a != sweep_fingerprint(spec_b, "immunity", 20, 7, {})
        assert a != sweep_fingerprint(spec_a, "transient", 20, 7, {})
        assert a != sweep_fingerprint(spec_a, "immunity", 20, 8, {})
        assert a != sweep_fingerprint(spec_a, "immunity", 20, 7,
                                      {"gate": "NAND3"})


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


class TestScheduler:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1

    def test_resolve_backend(self):
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) == "process"
        assert resolve_backend("thread", 4) == "thread"
        with pytest.raises(RuntimeLayerError):
            resolve_backend("cluster", 4)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_run_tasks_ordered_on_every_backend(self, backend):
        tasks = list(range(13))
        assert run_tasks(_square, tasks, jobs=3, backend=backend) == \
            [x * x for x in tasks]

    def test_shard_indices_partition(self):
        for n in (0, 1, 2, 5, 16, 17):
            for shards in (1, 2, 3, 8, 40):
                slices = shard_indices(n, shards)
                flat = [i for start, stop in slices for i in range(start, stop)]
                assert flat == list(range(n))
                if n:
                    sizes = [stop - start for start, stop in slices]
                    assert max(sizes) - min(sizes) <= 1

    def test_plan_shards_serial_is_one_shard(self):
        assert plan_shards(10, None) == [(0, 10)]
        assert len(plan_shards(100, 2)) <= 8


class TestShardedSweepBitIdentity:
    """Acceptance: jobs>1 is bit-identical to jobs=1 on both engines."""

    def test_immunity_grid(self):
        spec = SweepSpec.from_mapping({
            "cnts_per_trial": (2, 4),
            "technique": ("vulnerable", "compact"),
        })
        serial = run_sweep_study(spec, engine="immunity", trials=25, seed=7)
        for jobs, backend in ((2, "thread"), (3, "thread"), (2, "serial")):
            sharded = run_sweep_study(spec, engine="immunity", trials=25,
                                      seed=7, jobs=jobs, backend=backend)
            assert sharded == serial

    def test_immunity_grid_process_pool(self):
        spec = SweepSpec.from_mapping({"technique": ("vulnerable", "compact")})
        serial = run_sweep_study(spec, engine="immunity", trials=10, seed=3)
        sharded = run_sweep_study(spec, engine="immunity", trials=10, seed=3,
                                  jobs=2, backend="process")
        assert sharded == serial

    def test_immunity_zip(self):
        spec = SweepSpec.from_mapping(
            {"cnts_per_trial": (2, 4, 8),
             "technique": ("vulnerable", "compact", "compact")},
            mode="zip",
        )
        serial = run_sweep_study(spec, engine="immunity", trials=25, seed=7)
        sharded = run_sweep_study(spec, engine="immunity", trials=25, seed=7,
                                  jobs=2, backend="thread")
        assert sharded == serial

    def test_immunity_shared_population_contract_survives_sharding(self):
        """Corners differing only in technique still see the same defect
        populations when sharded — even when the shard boundary splits
        them apart."""
        spec = SweepSpec.from_mapping({
            "technique": ("vulnerable", "compact"),
            "cnts_per_trial": (2, 4),
        })
        serial = run_sweep_study(spec, engine="immunity", trials=25, seed=7)
        # 4 corners, 4 single-corner shards: techniques land on different
        # workers yet must reuse one child sequence per combination.
        sharded = run_sweep_study(spec, engine="immunity", trials=25, seed=7,
                                  jobs=4, backend="thread")
        assert sharded == serial

    def test_transient_grid(self):
        """Satellite: the transient engine's sharded path has the same
        bit-identity guarantee the immunity engine always had."""
        spec = SweepSpec.from_mapping({
            "vdd": (0.9, 1.0),
            "cell": ("INV", "NAND2"),
        })
        serial = run_sweep_study(spec, engine="transient")
        sharded = run_sweep_study(spec, engine="transient", jobs=3,
                                  backend="thread")
        assert sharded == serial
        assert [r.corner for r in sharded.records] == \
            [r.corner for r in serial.records]

    def test_transient_zip(self):
        spec = SweepSpec.from_mapping(
            {"vdd": (0.9, 1.0, 1.0), "pitch_nm": (5.0, 5.0, 4.5)},
            mode="zip",
        )
        serial = run_sweep_study(spec, engine="transient")
        sharded = run_sweep_study(spec, engine="transient", jobs=2,
                                  backend="thread")
        assert sharded == serial


class TestMonteCarloSweepRouting:
    def test_workers_still_bit_identical(self):
        """The montecarlo.sweep pool now routes through the runtime
        scheduler; the original workers contract must hold unchanged."""
        from repro.immunity.montecarlo import sweep

        kwargs = dict(gates=("NAND2",), techniques=("vulnerable", "compact"),
                      cnts_per_trial=(2,), trials=15, seed=4)
        assert sweep(**kwargs) == sweep(workers=2, **kwargs)

    def test_single_pool_implementation(self):
        """No parallel code path owns its own executor any more.

        Enforced by reprolint's RPL001 (the single-scheduler rule),
        which resolves import aliases in the AST instead of grepping
        source text — a comment mentioning ProcessPoolExecutor no
        longer trips it, a disguised ``from concurrent import
        futures as cf`` still does.
        """
        import repro.immunity.montecarlo as montecarlo
        import repro.study.sweeps as sweeps

        from repro.lint import lint_paths

        report = lint_paths(
            [montecarlo.__file__, sweeps.__file__], select=["RPL001"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert not report.findings, f"private pool detected:\n{rendered}"


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        result = experiments.run_fig3_nand3()
        key = study_fingerprint("fig3")
        assert cache.get(key) is None
        cache.put(key, result)
        restored = cache.get(key)
        assert restored == result
        assert restored.to_dict() == result.to_dict()
        stats = cache.stats()
        assert (stats.entries, stats.hits, stats.misses) == (1, 1, 1)
        assert stats.by_study == {"fig3": 1}
        assert stats.total_bytes > 0

    def test_counters_persist_across_instances(self, tmp_path):
        root = tmp_path / "store"
        key = study_fingerprint("fig3")
        ResultCache(root).put(key, experiments.run_fig3_nand3())
        ResultCache(root).get(key)
        assert ResultCache(root).stats().hits == 1

    def test_counter_persistence_is_thread_safe(self, tmp_path):
        """Counter updates are read-modify-write on stats.json; hammering
        misses from many threads (and across instances sharing the store)
        must lose no increments — the regression for the unlocked _bump."""
        import threading

        root = tmp_path / "store"
        threads, per_thread = 8, 25
        missing = study_fingerprint("fig3", params={"unit_width": -1.0})

        def hammer():
            cache = ResultCache(root)        # per-thread instance, one store
            for _ in range(per_thread):
                assert cache.get(missing) is None

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert ResultCache(root).stats().misses == threads * per_thread

    def test_corrupt_entry_is_evicted_not_served(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        key = study_fingerprint("fig3")
        path = cache.put(key, experiments.run_fig3_nand3())
        path.write_text(path.read_text().replace("compact", "c0rrupt"))
        assert cache.get(key) is None          # digest mismatch -> miss
        assert not path.exists()               # and the entry is evicted
        assert cache.stats().corrupt == 1

    def test_digest_valid_but_undecodable_entry_is_evicted(self, tmp_path):
        """A stale entry whose digest still matches (e.g. a result class
        reshaped without a version bump) must degrade to recomputation,
        not crash or serve garbage."""
        from repro.runtime.cache import _envelope_digest

        cache = ResultCache(tmp_path / "store")
        key = study_fingerprint("fig3")
        path = cache.put(key, experiments.run_fig3_nand3())
        wrapper = json.loads(path.read_text())
        wrapper["result"]["payload"] = "not-a-mapping"
        wrapper["sha256"] = _envelope_digest(wrapper["result"])
        path.write_text(json.dumps(wrapper))
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.stats().corrupt == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        key = study_fingerprint("fig3")
        path = cache.put(key, experiments.run_fig3_nand3())
        path.write_text(path.read_text()[:40])
        assert cache.get(key) is None

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.put(study_fingerprint("fig3"), experiments.run_fig3_nand3())
        leftovers = [p for p in (tmp_path / "store").rglob(".tmp-*")]
        assert leftovers == []

    def test_prune(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cache.put(study_fingerprint("fig3"), experiments.run_fig3_nand3())
        cache.put(study_fingerprint("fig3", {"unit_width": 6}),
                  experiments.run_fig3_nand3(unit_width=6))
        cache.put(study_fingerprint("table1"), experiments.run_table1())
        assert cache.prune(study="fig3") == 2
        assert cache.stats().by_study == {"table1": 1}
        assert cache.prune() == 1
        assert cache.stats().entries == 0

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(CacheError):
            cache.path_for("../escape")

    def test_env_var_names_default_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        assert ResultCache().root == tmp_path / "envstore"
        assert as_cache(True).root == tmp_path / "envstore"

    def test_unwritable_counters_do_not_break_a_hit(self, tmp_path,
                                                    monkeypatch):
        """Counters are telemetry: a store whose stats.json cannot be
        written (read-only mount) must still serve valid hits."""
        cache = ResultCache(tmp_path / "store")
        key = study_fingerprint("fig3")
        result = experiments.run_fig3_nand3()
        cache.put(key, result)
        monkeypatch.setattr(
            ResultCache, "_write_atomic",
            lambda self, path, text: (_ for _ in ()).throw(OSError("read-only")),
        )
        assert cache.get(key) == result

    def test_as_cache_forms(self, tmp_path):
        assert as_cache(None) is None
        assert as_cache(False) is None
        assert as_cache(str(tmp_path)).root == tmp_path
        cache = ResultCache(tmp_path)
        assert as_cache(cache) is cache
        with pytest.raises(CacheError):
            as_cache(3.14)


class TestCachedRunStudy:
    def test_warm_run_skips_engine_and_is_identical(self, tmp_path,
                                                    monkeypatch):
        cache = ResultCache(tmp_path / "store")
        cold = run_study("fig3", cache=cache)
        assert cold.provenance.cache == "miss"

        def boom(**kwargs):
            raise AssertionError("engine re-invoked on a warm cache")

        monkeypatch.setattr(experiments, "run_fig3_nand3", boom)
        warm = run_study("fig3", cache=cache)
        assert warm.provenance.cache == "hit"
        assert warm == cold
        assert warm.to_dict() == cold.to_dict()

    def test_param_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        run_study("fig3", cache=cache)
        other = run_study("fig3", cache=cache, unit_width=6.0)
        assert other.provenance.cache == "miss"

    def test_uncached_run_has_no_cache_provenance(self):
        assert run_study("fig3").provenance.cache is None

    def test_jobs_forwarded_to_workers_param(self, monkeypatch):
        seen = {}
        real = experiments.run_immunity_sweep

        def spy(workers=None):
            seen["workers"] = workers
            return real(cnts_per_trial=(2,), max_angle_deg=(15.0,),
                        metallic_fraction=(0.0,), trials=5)

        monkeypatch.setattr(experiments, "run_immunity_sweep", spy)
        run_study("immunity_sweep", jobs=2)
        assert seen.get("workers") == 2

    def test_jobs_rejected_for_serial_study(self):
        with pytest.raises(StudyError, match="no parallel runner"):
            run_study("fig3", jobs=2)

    def test_cached_sweep_hit_returns_identical_typed_result(self, tmp_path):
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2, 4)})
        cache = ResultCache(tmp_path / "store")
        cold = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               cache=cache)
        warm = run_sweep_study(spec, engine="immunity", trials=20, seed=7,
                               cache=cache)
        assert cold.provenance.cache == "miss"
        assert warm.provenance.cache == "hit"
        assert warm == cold
        assert [r.metrics["failure_rate"] for r in warm.records] == \
            [r.metrics["failure_rate"] for r in cold.records]

    def test_jobs_do_not_change_the_cache_key(self, tmp_path):
        spec = SweepSpec.from_mapping({"technique": ("vulnerable", "compact")})
        cache = ResultCache(tmp_path / "store")
        run_sweep_study(spec, engine="immunity", trials=10, seed=3,
                        cache=cache)
        warm = run_sweep_study(spec, engine="immunity", trials=10, seed=3,
                               jobs=2, backend="thread", cache=cache)
        assert warm.provenance.cache == "hit"

    def test_seed_none_bypasses_the_cache(self, tmp_path):
        """seed=None asks for fresh OS entropy; caching it would serve a
        stale random draw as a hit, so the cache must stay out of it."""
        spec = SweepSpec.from_mapping({"technique": ("vulnerable",)})
        cache = ResultCache(tmp_path / "store")
        result = run_sweep_study(spec, engine="immunity", trials=10,
                                 seed=None, cache=cache)
        assert result.provenance.cache is None
        assert cache.stats().entries == 0
        study = run_study("fig2", trials=10, seed=None, cache=cache)
        assert study.provenance.cache is None
        assert cache.stats().entries == 0

    def test_with_cache_status_excluded_from_equality(self):
        result = experiments.run_fig3_nand3()
        assert with_cache_status(result, "hit") == \
            with_cache_status(result, "miss") == result

    def test_cache_status_survives_the_json_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        cold = run_study("fig3", cache=cache)
        restored = StudyResult.from_json(cold.to_json())
        assert restored.provenance.cache == "miss"


# ---------------------------------------------------------------------------
# Manifests
# ---------------------------------------------------------------------------

def _manifest_entries():
    return [
        {"study": "fig3"},
        {"study": "nand3"},                      # alias of fig3 -> dedup
        {"study": "fig3", "params": {"unit_width": 6}},
        {"study": "sweep", "engine": "immunity",
         "axes": {"cnts_per_trial": [2, 4]},
         "params": {"trials": 10, "seed": 7}},
    ]


class TestManifest:
    def test_dedup_without_cache(self):
        result = run_manifest(_manifest_entries())
        statuses = [outcome.status for outcome in result.outcomes]
        assert statuses == ["computed", "dedup", "computed", "computed"]
        assert result.results[0] is result.results[1]
        assert result.results[0]["unit_width"] == 4.0
        assert result.results[2]["unit_width"] == 6

    def test_cache_turns_reruns_into_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        first = run_manifest(_manifest_entries(), cache=cache)
        assert [o.status for o in first.outcomes] == \
            ["miss", "dedup", "miss", "miss"]
        second = run_manifest(_manifest_entries(), cache=cache)
        assert [o.status for o in second.outcomes] == \
            ["hit", "dedup", "hit", "hit"]
        for a, b in zip(first.results, second.results):
            assert a == b

    def test_cross_study_dedup_through_cache(self, tmp_path):
        """A single `repro run` warms the store for later manifests."""
        cache = ResultCache(tmp_path / "store")
        run_study("fig3", cache=cache)
        result = run_manifest([{"study": "fig3"}], cache=cache)
        assert result.outcomes[0].status == "hit"

    def test_manifest_file_source(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"studies": [{"study": "fig3"}]}))
        result = run_manifest(path)
        assert result.outcomes[0].study == "fig3"

    def test_result_serializes(self):
        result = run_manifest([{"study": "fig3"}])
        restored = StudyResult.from_json(result.to_json())
        assert isinstance(restored, ManifestResult)
        assert restored.outcomes == result.outcomes
        assert restored.results is None        # live results don't persist
        assert str(result).splitlines()[-1].startswith("1 entries")

    @pytest.mark.parametrize("bad, message", [
        ([], "no entries"),
        ([{"params": {}}], "needs a 'study'"),
        ([{"study": "fig3", "axes": {"x": [1]}}], "only apply"),
        ([{"study": "fig3", "frobnicate": 1}], "unknown keys"),
        ([{"study": "sweep"}], "non-empty 'axes'"),
        ("not-a-list", "JSON list"),
    ])
    def test_malformed_manifests_fail_cleanly(self, bad, message, tmp_path):
        if isinstance(bad, str):
            source = tmp_path / "manifest.json"
            source.write_text(json.dumps(bad))
        else:
            source = bad
        with pytest.raises(RuntimeLayerError, match=message):
            run_manifest(source)

    def test_missing_manifest_file(self, tmp_path):
        with pytest.raises(RuntimeLayerError, match="Cannot read"):
            run_manifest(tmp_path / "absent.json")

    def test_fresh_entropy_entries_never_dedup_or_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "store")
        entry = {"study": "fig2", "params": {"trials": 10, "seed": None}}
        result = run_manifest([entry, entry], cache=cache)
        assert [o.status for o in result.outcomes] == ["computed", "computed"]
        assert cache.stats().entries == 0


# ---------------------------------------------------------------------------
# Provenance plumbing
# ---------------------------------------------------------------------------

class TestProvenanceCacheField:
    def test_field_defaults_none_and_not_compared(self):
        result = experiments.run_fig3_nand3()
        assert result.provenance.cache is None
        marked = dataclasses.replace(result.provenance, cache="hit")
        assert marked == result.provenance

    def test_old_envelopes_without_cache_field_still_load(self):
        document = json.loads(experiments.run_fig3_nand3().to_json())
        del document["provenance"]["cache"]
        restored = StudyResult.from_json_dict(document)
        assert restored.provenance.cache is None
