"""The async study service: concurrency, dedup and fault harness.

The contracts under test (PR 8):

* **lifecycle** — submit / poll / fetch / cancel through the five HTTP
  endpoints, with typed error payloads and the right status codes;
* **dedup** — K identical concurrent submissions cost exactly one engine
  invocation (counter-proved, like ``test_delta_sweep``), and every
  client fetches byte-identical envelopes equal to a direct
  :func:`run_study`;
* **execution blindness at the API boundary** — job fingerprints are
  invariant under submission-body key order and ``jobs``/``backend``
  (property-style, RPL004 extended to HTTP);
* **fault injection** — an engine raising mid-job yields status
  ``failed`` with a typed error payload, never a hung job or a dead
  server.

All HTTP traffic is stdlib ``http.client`` against an ephemeral port;
the engine under the service is the real one except where a counting /
blocking / raising wrapper is monkeypatched in (the registry resolves
runners at call time, so patching ``experiments.run_fig3_nand3``
reaches the worker threads).
"""

from __future__ import annotations

import functools
import http.client
import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

import repro.analysis.experiments as experiments
from repro.runtime.manifest import _entry_key, ManifestEntry
from repro.service import (
    InvalidSubmission,
    JobManager,
    JobSubmission,
    ReproService,
    status_for,
)
from repro.study.registry import run_study

POLL_TIMEOUT_S = 60.0


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


class Client:
    """A minimal stdlib HTTP client bound to one running service."""

    def __init__(self, service: ReproService):
        self.host, self.port = service.server_address[:2]

    def request(self, method: str, path: str, body=None):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=POLL_TIMEOUT_S)
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            return response.status, raw
        finally:
            connection.close()

    def json(self, method: str, path: str, body=None):
        status, raw = self.request(method, path, body)
        return status, json.loads(raw)

    def poll(self, job_id: str, until=("done", "failed", "cancelled")):
        deadline = time.monotonic() + POLL_TIMEOUT_S
        while True:
            status, document = self.json("GET", f"/jobs/{job_id}")
            assert status == 200
            if document["status"] in until:
                return document
            assert time.monotonic() < deadline, \
                f"job {job_id} stuck in {document['status']}"
            time.sleep(0.02)


def _start(tmp_path, **kwargs):
    kwargs.setdefault("cache", tmp_path / "cache")
    kwargs.setdefault("workers", 2)
    service = ReproService(port=0, **kwargs)
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    return service


@pytest.fixture
def service(tmp_path):
    running = _start(tmp_path)
    yield running
    running.close()


@pytest.fixture
def client(service):
    return Client(service)


@pytest.fixture
def fig3_gate(monkeypatch):
    """The counting/blocking fig3 engine: every invocation increments
    ``calls`` and waits on ``release`` before computing — so tests can
    pile up concurrent submissions against a provably single run."""
    real = experiments.run_fig3_nand3
    calls = []
    release = threading.Event()
    started = threading.Event()

    # wraps() preserves the runner's signature, which run_study uses to
    # validate keyword parameters before invoking it.
    @functools.wraps(real)
    def gated(*args, **kwargs):
        calls.append(1)
        started.set()
        assert release.wait(POLL_TIMEOUT_S), "gate never released"
        return real(*args, **kwargs)

    monkeypatch.setattr(experiments, "run_fig3_nand3", gated)
    return calls, release, started


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_health(self, client):
        assert client.json("GET", "/health") == (200, {"status": "ok"})

    def test_submit_poll_fetch(self, client):
        status, document = client.json("POST", "/jobs", {"study": "fig3"})
        assert status == 201
        assert document["deduplicated"] is False
        assert document["submission"] == {
            "kind": "study", "study": "fig3",
            "entries": 1, "deterministic": True,
        }
        job_id = document["id"]
        final = client.poll(job_id)
        assert final["status"] == "done"
        assert final["error"] is None
        status, envelope = client.json("GET", f"/jobs/{job_id}/result")
        assert status == 200
        assert envelope["study"] == "fig3"
        assert envelope["payload"] == run_study("fig3").to_json_dict()["payload"]

    def test_job_listing_in_submission_order(self, client):
        first = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
        second = client.json(
            "POST", "/jobs",
            {"study": "fig3", "params": {"unit_width": 6.0}})[1]["id"]
        status, listing = client.json("GET", "/jobs")
        assert status == 200
        assert [job["id"] for job in listing["jobs"]] == [first, second]

    def test_sweep_job_reports_corner_progress(self, client):
        status, document = client.json("POST", "/jobs", {
            "study": "sweep", "engine": "immunity",
            "axes": {"cnts_per_trial": [2, 4, 6]},
            "params": {"trials": 20, "seed": 7},
        })
        assert status == 201
        assert document["progress"]["total"] == 3
        final = client.poll(document["id"])
        assert final["status"] == "done"
        assert final["progress"] == {"total": 3, "done": 3}

    def test_unknown_job_is_404(self, client):
        for method, path in (
            ("GET", "/jobs/job-999999"),
            ("GET", "/jobs/job-999999/result"),
            ("DELETE", "/jobs/job-999999"),
        ):
            status, document = client.json(method, path)
            assert status == 404
            assert document["error"]["type"] == "JobNotFound"

    def test_unknown_endpoint_is_404(self, client):
        assert client.json("GET", "/nope")[0] == 404
        assert client.json("POST", "/jobs/extra", {"study": "fig3"})[0] == 404

    @pytest.mark.parametrize("body", [
        {"study": "no-such-study"},
        {"study": "sweep", "engine": "warp", "axes": {"vdd": [0.8]}},
        {"study": "fig3", "jobs": "four"},
        {"study": "fig3", "backend": "quantum"},
        {"studies": []},
        [1, 2, 3],
    ])
    def test_invalid_submissions_are_400(self, client, body):
        status, document = client.json("POST", "/jobs", body)
        assert status == 400
        assert document["error"]["type"] == "InvalidSubmission"
        assert document["error"]["repro"] is True

    def test_non_json_body_is_400(self, client):
        connection = http.client.HTTPConnection(client.host, client.port,
                                                timeout=POLL_TIMEOUT_S)
        try:
            connection.request("POST", "/jobs", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"]["type"] \
                == "InvalidSubmission"
        finally:
            connection.close()

    def test_result_of_unfinished_job_is_409(self, tmp_path, fig3_gate):
        calls, release, started = fig3_gate
        service = _start(tmp_path, workers=1)
        try:
            client = Client(service)
            job_id = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
            assert started.wait(POLL_TIMEOUT_S)
            status, document = client.json("GET", f"/jobs/{job_id}/result")
            assert status == 409
            assert document["error"]["type"] == "JobStateError"
            release.set()
            assert client.poll(job_id)["status"] == "done"
        finally:
            release.set()
            service.close()


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_queued_job_cancels_and_never_runs(self, tmp_path, fig3_gate):
        calls, release, started = fig3_gate
        service = _start(tmp_path, workers=1)
        try:
            client = Client(service)
            blocker = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
            assert started.wait(POLL_TIMEOUT_S)
            queued = client.json(
                "POST", "/jobs",
                {"study": "fig3", "params": {"unit_width": 6.0}})[1]
            assert queued["status"] == "queued"
            status, cancelled = client.json("DELETE", f"/jobs/{queued['id']}")
            assert status == 200
            assert cancelled["status"] == "cancelled"
            # Cancelling again, or fetching its result, is a state error.
            assert client.json("DELETE", f"/jobs/{queued['id']}")[0] == 409
            assert client.json(
                "GET", f"/jobs/{queued['id']}/result")[0] == 409
            release.set()
            assert client.poll(blocker)["status"] == "done"
            # Only the blocker ever reached the engine.
            assert len(calls) == 1
        finally:
            release.set()
            service.close()

    def test_running_job_cannot_be_cancelled(self, tmp_path, fig3_gate):
        calls, release, started = fig3_gate
        service = _start(tmp_path, workers=1)
        try:
            client = Client(service)
            job_id = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
            assert started.wait(POLL_TIMEOUT_S)
            status, document = client.json("DELETE", f"/jobs/{job_id}")
            assert status == 409
            assert document["error"]["type"] == "JobStateError"
            release.set()
            assert client.poll(job_id)["status"] == "done"
        finally:
            release.set()
            service.close()

    def test_cancelled_job_does_not_absorb_resubmission(self, tmp_path,
                                                        fig3_gate):
        calls, release, started = fig3_gate
        service = _start(tmp_path, workers=1)
        try:
            client = Client(service)
            client.json("POST", "/jobs", {"study": "fig3"})
            assert started.wait(POLL_TIMEOUT_S)
            body = {"study": "fig3", "params": {"unit_width": 6.0}}
            queued = client.json("POST", "/jobs", body)[1]
            client.json("DELETE", f"/jobs/{queued['id']}")
            resubmitted = client.json("POST", "/jobs", body)[1]
            assert resubmitted["id"] != queued["id"]
            assert resubmitted["deduplicated"] is False
            release.set()
            assert client.poll(resubmitted["id"])["status"] == "done"
        finally:
            release.set()
            service.close()


# ---------------------------------------------------------------------------
# Dedup: the acceptance criterion
# ---------------------------------------------------------------------------


class TestConcurrentDedup:
    K = 6

    def test_k_identical_submissions_one_engine_run(self, tmp_path,
                                                    fig3_gate):
        """K concurrent identical POSTs -> exactly one engine invocation,
        one job id, K clients, and K byte-identical result envelopes
        equal to a direct ``run_study``."""
        calls, release, started = fig3_gate
        service = _start(tmp_path, workers=2)
        try:
            client = Client(service)
            responses = []
            errors = []

            def submit():
                try:
                    responses.append(
                        client.json("POST", "/jobs", {"study": "fig3"}))
                except Exception as error:  # pragma: no cover - harness
                    errors.append(error)

            threads = [threading.Thread(target=submit)
                       for _ in range(self.K)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(responses) == self.K

            job_ids = {document["id"] for _, document in responses}
            assert len(job_ids) == 1, "identical submissions split jobs"
            job_id = job_ids.pop()
            statuses = sorted(status for status, _ in responses)
            assert statuses == [200] * (self.K - 1) + [201]
            deduplicated = [document["deduplicated"]
                            for _, document in responses]
            assert sum(deduplicated) == self.K - 1

            release.set()
            final = client.poll(job_id)
            assert final["status"] == "done"
            assert final["clients"] == self.K
            assert len(calls) == 1, "dedup leaked extra engine runs"

            bodies = {client.request("GET", f"/jobs/{job_id}/result")[1]
                      for _ in range(self.K)}
            assert len(bodies) == 1, "clients saw different bytes"
            envelope = json.loads(bodies.pop())
            assert envelope["payload"] \
                == run_study("fig3").to_json_dict()["payload"]
        finally:
            release.set()
            service.close()

    def test_submission_after_completion_attaches_to_done_job(self, client):
        first = client.json("POST", "/jobs", {"study": "fig3"})[1]
        client.poll(first["id"])
        status, second = client.json("POST", "/jobs", {"study": "fig3"})
        assert status == 200
        assert second["id"] == first["id"]
        assert second["deduplicated"] is True
        assert second["clients"] == 2

    def test_execution_overrides_do_not_split_jobs(self, client):
        first = client.json("POST", "/jobs", {"study": "fig3"})[1]
        client.poll(first["id"])
        status, second = client.json(
            "POST", "/jobs", {"study": "fig3", "jobs": 4,
                              "backend": "thread"})
        assert status == 200
        assert second["id"] == first["id"]

    def test_fresh_entropy_submissions_never_dedup(self, client):
        body = {"study": "fig2", "params": {"seed": None, "trials": 10}}
        first = client.json("POST", "/jobs", body)[1]
        second = client.json("POST", "/jobs", body)[1]
        assert first["submission"]["deterministic"] is False
        assert first["id"] != second["id"]
        assert client.poll(first["id"])["status"] == "done"
        assert client.poll(second["id"])["status"] == "done"


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_engine_exception_fails_job_not_server(self, tmp_path,
                                                   monkeypatch):
        def exploding(*args, **kwargs):
            raise RuntimeError("injected mid-job fault")

        monkeypatch.setattr(experiments, "run_fig3_nand3", exploding)
        service = _start(tmp_path)
        try:
            client = Client(service)
            job_id = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
            final = client.poll(job_id)
            assert final["status"] == "failed"
            assert final["error"] == {
                "type": "RuntimeError",
                "message": "injected mid-job fault",
                "repro": False,
            }
            status, document = client.json("GET", f"/jobs/{job_id}/result")
            assert status == 409
            assert "RuntimeError" in document["error"]["message"]
            # The server survives and the pool still takes work.
            assert client.json("GET", "/health")[0] == 200
        finally:
            service.close()

    def test_pool_runs_new_jobs_after_a_failure(self, tmp_path, monkeypatch):
        real = experiments.run_fig3_nand3
        fail_first = {"armed": True}

        def flaky(*args, **kwargs):
            if fail_first.pop("armed", False):
                raise ValueError("transient explosion")
            return real(*args, **kwargs)

        monkeypatch.setattr(experiments, "run_fig3_nand3", flaky)
        service = _start(tmp_path, workers=1)
        try:
            client = Client(service)
            failed = client.json("POST", "/jobs", {"study": "fig3"})[1]["id"]
            assert client.poll(failed)["status"] == "failed"
            # A failed job never absorbs a retry: same body, new job.
            status, retry = client.json("POST", "/jobs", {"study": "fig3"})
            assert status == 201
            assert retry["id"] != failed
            assert client.poll(retry["id"])["status"] == "done"
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Fingerprint properties: execution blindness at the API boundary
# ---------------------------------------------------------------------------


def _fingerprint(document) -> str:
    return JobSubmission.from_document(document).fingerprint()


class TestFingerprintProperties:
    BASE = {"study": "sweep", "engine": "immunity", "mode": "grid",
            "axes": {"cnts_per_trial": [2, 4], "technique": ["compact"]},
            "params": {"trials": 50, "seed": 7}}

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_invariant_under_key_order(self, data):
        """Shuffling the top-level body keys and the ``params`` mapping
        never moves the fingerprint: the address hashes canonical
        content, not JSON serialisation order.  (``axes`` stays fixed —
        its declaration order is semantic, see the test below.)"""
        reference = _fingerprint(self.BASE)
        top = data.draw(st.permutations(list(self.BASE.items())))
        shuffled = {
            key: (dict(data.draw(st.permutations(list(value.items()))))
                  if key == "params" else value)
            for key, value in top
        }
        assert _fingerprint(shuffled) == reference

    def test_axes_order_is_semantic_not_serialisation(self):
        """Reordering ``axes`` *keys* is different work — axis order
        defines the corner expansion order of the sweep — so unlike
        ``params`` key order it legitimately moves the fingerprint."""
        swapped = dict(self.BASE, axes={"technique": ["compact"],
                                        "cnts_per_trial": [2, 4]})
        assert _fingerprint(swapped) != _fingerprint(self.BASE)

    @settings(max_examples=25, deadline=None)
    @given(jobs=st.one_of(st.none(), st.integers(-1, 16)),
           backend=st.sampled_from([None, "serial", "thread", "process"]))
    def test_invariant_under_execution_fields(self, jobs, backend):
        """``jobs``/``backend`` select *how* the job executes; adding,
        removing or changing them never moves the fingerprint (RPL004 at
        the API boundary)."""
        document = dict(self.BASE)
        if jobs is not None:
            document["jobs"] = jobs
        if backend is not None:
            document["backend"] = backend
        assert _fingerprint(document) == _fingerprint(self.BASE)

    def test_work_changes_move_the_fingerprint(self):
        changed = dict(self.BASE, params={"trials": 51, "seed": 7})
        assert _fingerprint(changed) != _fingerprint(self.BASE)
        reaxed = dict(self.BASE, axes={"cnts_per_trial": [2, 4, 8],
                                       "technique": ["compact"]})
        assert _fingerprint(reaxed) != _fingerprint(self.BASE)

    def test_service_fingerprint_is_the_runtime_fingerprint(self):
        """A service job and a ``repro sweep`` / ``repro run`` of the
        same invocation share one content address (one cache entry)."""
        submission = JobSubmission.from_document(self.BASE)
        entry = ManifestEntry.from_mapping(self.BASE, 0)
        assert submission.fingerprint() == _entry_key(entry)[1]
        study = JobSubmission.from_document(
            {"study": "fig3", "params": {"unit_width": 6.0}})
        study_entry = ManifestEntry.from_mapping(
            {"study": "fig3", "params": {"unit_width": 6.0}}, 0)
        assert study.fingerprint() == _entry_key(study_entry)[1]

    def test_manifest_fingerprint_is_order_sensitive(self):
        """A manifest is an ordered program; reordering its entries is
        different work, unlike reordering keys inside one entry."""
        one = {"study": "fig3"}
        two = {"study": "fig3", "params": {"unit_width": 6.0}}
        forward = _fingerprint({"studies": [one, two]})
        backward = _fingerprint({"studies": [two, one]})
        assert forward != backward
        assert forward == _fingerprint({"studies": [one, two], "jobs": 8})


# ---------------------------------------------------------------------------
# Manager-level seams the HTTP tests cannot reach
# ---------------------------------------------------------------------------


class TestJobManager:
    def test_closed_manager_rejects_submissions(self, tmp_path):
        manager = JobManager(cache=tmp_path / "cache", workers=1)
        manager.close()
        with pytest.raises(Exception):
            manager.submit(JobSubmission.from_document({"study": "fig3"}))

    def test_close_cancels_queued_jobs(self, tmp_path, fig3_gate):
        calls, release, started = fig3_gate
        manager = JobManager(cache=tmp_path / "cache", workers=1)
        try:
            blocker, _ = manager.submit(
                JobSubmission.from_document({"study": "fig3"}))
            assert started.wait(POLL_TIMEOUT_S)
            queued, _ = manager.submit(JobSubmission.from_document(
                {"study": "fig3", "params": {"unit_width": 6.0}}))
            release.set()
            manager.close()
            assert queued.status == "cancelled"
            assert blocker.status == "done"
            assert len(calls) == 1
        finally:
            release.set()

    def test_invalid_submission_messages_are_typed(self):
        with pytest.raises(InvalidSubmission):
            JobSubmission.from_document({"study": "fig3", "jobs": True})
        with pytest.raises(InvalidSubmission):
            JobSubmission.from_document(
                {"studies": [{"study": "fig3"}], "extra": 1})
        assert status_for(InvalidSubmission("x")) == 400
