"""Regressions for the batch transient engine and the characterisation
sweep: the batch/loop bit-identity contract, measurement parity under
back-drive, the vectorized PWL evaluator, and the sweep grid."""

import numpy as np
import pytest

from repro.cells import (
    characterize_sweep,
    cnfet_technology,
    gate_transistor_netlist,
    measured_timing_models,
    sensitizing_assignment,
)
from repro.circuit import (
    CompiledTransientBatch,
    PiecewiseLinearSource,
    SimulationCase,
    TransientSimulator,
    build_inverter_chain,
    cmos_inverter,
    cnfet_inverter,
    constant_source,
    pulse_source,
    run_transient_batch,
    simulate_inverter_chain_batch,
    step_source,
)
from repro.devices import FO4_GATE_WIDTH_NM, calibrated_cnfet_parameters
from repro.errors import SimulationError
from repro.logic import standard_gate

STOP = 20e-12
STEP = 0.5e-12


def _cnfet_chain_case(tubes=6, vdd=1.0, stages=3):
    inverter = cnfet_inverter(tubes, FO4_GATE_WIDTH_NM,
                              parameters=calibrated_cnfet_parameters())
    netlist = build_inverter_chain(inverter, stages=stages, fanout=4, vdd=vdd)
    initial = {f"n{i + 1}": vdd if i % 2 == 0 else 0.0 for i in range(stages)}
    source = pulse_source(vdd, delay=3e-12, rise_time=1e-12, width=8e-12)
    return SimulationCase(netlist, {"in": source}, initial)


def _loop(case, stop=STOP, step=STEP):
    return TransientSimulator(case.netlist, case.sources,
                              case.initial_conditions).run(stop, step,
                                                           engine="loop")


def _assert_identical(loop, batch):
    assert set(loop.waveforms) == set(batch.waveforms)
    for net in loop.waveforms:
        assert np.array_equal(loop.waveforms[net], batch.waveforms[net]), net
    assert loop.supply_charge == batch.supply_charge
    assert loop.vdd == batch.vdd


class TestBitIdentity:
    def test_inverter_chain_batch_matches_loop(self):
        """CNFET chain corners: every waveform sample of every corner is
        byte-identical across the engines."""
        cases = [_cnfet_chain_case(tubes) for tubes in (1, 4, 6, 12)]
        batch = run_transient_batch(cases, STOP, STEP)
        for case, result in zip(cases, batch):
            _assert_identical(_loop(case), result)

    def test_mixed_technology_batch(self):
        """A CMOS corner rides in the same batch as CNFET corners."""
        cnfet = _cnfet_chain_case(6)
        cmos_net = build_inverter_chain(cmos_inverter(), stages=3, fanout=4,
                                        vdd=1.0)
        cmos = SimulationCase(cmos_net, cnfet.sources,
                              cnfet.initial_conditions)
        batch = run_transient_batch([cnfet, cmos], STOP, STEP)
        _assert_identical(_loop(cnfet), batch[0])
        _assert_identical(_loop(cmos), batch[1])

    def test_nand3_gate_netlist_matches_loop(self):
        """The NAND3 cell netlist (stacked PDN with internal nodes,
        parallel PUN): batch == loop bit for bit."""
        gate = standard_gate("NAND3")
        tech = cnfet_technology()
        netlist = gate_transistor_netlist(gate, tech, drive_strength=2.0,
                                          load_capacitance=2e-15)
        sides = sensitizing_assignment(gate, gate.inputs[0])
        sources = {gate.inputs[0]: pulse_source(1.0, 3e-12, 2e-12, 8e-12)}
        for pin, value in sides.items():
            sources[pin] = constant_source(1.0 if value else 0.0)
        case = SimulationCase(netlist, sources, {"out": 1.0})
        batch = run_transient_batch([case], STOP, STEP)[0]
        _assert_identical(_loop(case), batch)

    def test_run_default_engine_is_batch_and_identical(self):
        case = _cnfet_chain_case()
        simulator = TransientSimulator(case.netlist, case.sources,
                                       case.initial_conditions)
        _assert_identical(simulator.run(STOP, STEP, engine="loop"),
                          simulator.run(STOP, STEP))

    def test_source_on_unreferenced_net_matches_loop(self):
        """A source driving a net no device references: the loop engine
        records its waveform without electrical effect, and the batch
        engine must do exactly the same (regression: this used to raise
        KeyError during compilation)."""
        case = _cnfet_chain_case()
        sources = dict(case.sources)
        sources["monitor"] = step_source(1.0, delay=5e-12, rise_time=2e-12)
        augmented = SimulationCase(case.netlist, sources,
                                   case.initial_conditions)
        batch = run_transient_batch([augmented], STOP, STEP)[0]
        loop = _loop(augmented)
        _assert_identical(loop, batch)
        assert "monitor" in batch.waveforms
        assert batch.voltage("monitor")[-1] == 1.0

    def test_unknown_engine_rejected(self):
        case = _cnfet_chain_case()
        simulator = TransientSimulator(case.netlist, case.sources,
                                       case.initial_conditions)
        with pytest.raises(SimulationError):
            simulator.run(STOP, STEP, engine="spice")


class TestMeasurementParity:
    def test_crossing_and_energy_parity_under_backdrive(self):
        """A rail-to-rail pulse through one FO4 inverter back-drives the
        supply during the falling edge; crossing times and supply energy
        must agree exactly across the engines."""
        netlist = build_inverter_chain(cmos_inverter(), stages=1, fanout=4,
                                       vdd=1.0)
        source = pulse_source(1.0, delay=20e-12, rise_time=2e-12,
                              width=200e-12)
        case = SimulationCase(netlist, {"in": source}, {"n1": 1.0})
        loop = _loop(case, stop=450e-12, step=1e-12)
        batch = run_transient_batch([case], 450e-12, 1e-12)[0]
        _assert_identical(loop, batch)
        for rising in (True, False):
            assert loop.crossing_time("n1", 0.5, rising=rising) == \
                batch.crossing_time("n1", 0.5, rising=rising)
        assert loop.propagation_delay("in", "n1") == \
            batch.propagation_delay("in", "n1")
        assert loop.supply_energy == batch.supply_energy
        # The back-drive guard of PR 1 still holds on both engines.
        load = netlist.node_capacitance("n1")
        assert 0.5 * load < batch.supply_charge < 4.0 * load


class TestVectorizedPWL:
    def test_matches_scalar_value_everywhere(self):
        """The padded vectorized PWL evaluator against the scalar oracle,
        including breakpoints, duplicate time points, the pre-first-point
        region and the hold-last-value tail."""
        sources = [
            PiecewiseLinearSource([(0.0, 0.2)]),
            step_source(1.0, delay=1e-12, rise_time=2e-12),
            pulse_source(0.9, delay=2e-12, rise_time=1e-12, width=3e-12),
            PiecewiseLinearSource([(0.0, 0.0), (1e-12, 1.0), (1e-12, 0.5),
                                   (4e-12, 0.5)]),
        ]
        inverter = cmos_inverter()
        netlist = build_inverter_chain(inverter, stages=1, fanout=1, vdd=1.0)
        # One case per source, all driving "in".
        cases = [SimulationCase(netlist, {"in": source}, {"n1": 1.0})
                 for source in sources]
        compiled = CompiledTransientBatch(cases)
        probe = np.array(
            [0.0, 0.5e-12, 1e-12, 1.5e-12, 2e-12, 3e-12, 4e-12, 5e-12,
             6e-12, 7e-12, 1e-9]
        )
        values = compiled._source_values(probe)       # (K, B, 1)
        for case_i, source in enumerate(sources):
            for time_i, time in enumerate(probe):
                assert values[time_i, case_i, 0] == source.value(float(time)), (
                    case_i, time)


class TestBatchValidation:
    def test_topology_mismatch_rejected(self):
        a = _cnfet_chain_case(stages=3)
        b = _cnfet_chain_case(stages=2)
        with pytest.raises(SimulationError):
            run_transient_batch([a, b], STOP, STEP)

    def test_missing_source_rejected(self):
        case = _cnfet_chain_case()
        with pytest.raises(SimulationError):
            run_transient_batch(
                [SimulationCase(case.netlist, {}, None)], STOP, STEP
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            run_transient_batch([], STOP, STEP)

    def test_mismatched_supply_list_rejected(self):
        inverter = cmos_inverter()
        with pytest.raises(SimulationError):
            simulate_inverter_chain_batch([inverter], vdd=[1.0, 0.9])

    def test_invalid_time_base_rejected(self):
        case = _cnfet_chain_case()
        with pytest.raises(SimulationError):
            run_transient_batch([case], -1.0, STEP)


class TestCharacterizationSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return characterize_sweep(
            gate_names=("INV", "NAND2"),
            drive_strengths=(1.0, 2.0),
            load_capacitances_f=(1e-15, 4e-15),
            input_slews_s=(5e-12,),
            corners={"tt": cnfet_technology(),
                     "lv": cnfet_technology(vdd=0.9)},
        )

    def test_grid_shape(self, sweep):
        assert sweep.shape == (2, 2, 2, 1, 2)
        assert len(sweep.points) == 16
        assert sweep.grid().shape == sweep.shape
        assert sweep.grid("energy_per_cycle_j").shape == sweep.shape

    def test_delay_monotone_in_load(self, sweep):
        grid = sweep.grid("worst_delay_s")
        assert np.all(np.diff(grid, axis=2) > 0.0)

    def test_stronger_drive_is_faster(self, sweep):
        grid = sweep.grid("worst_delay_s")
        assert np.all(np.diff(grid, axis=1) < 0.0)

    def test_low_voltage_corner_is_slower(self, sweep):
        grid = sweep.grid("worst_delay_s")
        assert np.all(grid[..., 1] > grid[..., 0])

    def test_point_lookup(self, sweep):
        point = sweep.point("NAND2", 2.0, 4e-15, 5e-12, "lv")
        assert point.cell == "NAND2"
        assert point.vdd == 0.9
        with pytest.raises(Exception):
            sweep.point("NAND2", 3.0, 4e-15, 5e-12, "lv")

    def test_all_positive(self, sweep):
        for point in sweep.points:
            assert point.delay_rise_s > 0
            assert point.delay_fall_s > 0
            assert point.energy_per_cycle_j > 0

    def test_measured_models_reproduce_sweep_delays(self):
        gate = standard_gate("INV")
        tech = cnfet_technology()
        loads = (1e-15, 2e-15, 4e-15)
        models = measured_timing_models(gate, tech, drive_strengths=(1.0,),
                                        loads=loads)
        model = models[1.0]
        check = characterize_sweep(
            gate_names=("INV",), drive_strengths=(1.0,),
            load_capacitances_f=loads,
            corners={"nominal": tech},
        )
        for load in loads:
            measured = check.point("INV", 1.0, load, 5e-12,
                                   "nominal").worst_delay_s
            assert model.stage_delay(load) == pytest.approx(measured,
                                                            rel=0.25)
