"""The Study layer: typed results, serialization, sweeps, provenance.

Covers the redesign's acceptance criteria:

* every ``run_*`` runner returns a typed, Mapping-compatible result whose
  ``to_dict()`` equals the pre-redesign dict payload bit-for-bit for
  fixed seeds (shim equivalence against :mod:`repro.analysis.legacy`);
* every result dataclass survives a lossless JSON round-trip, NumPy
  scalar/array fields included;
* :class:`~repro.study.spec.SweepSpec` expands grids/zips and honours the
  PR-1 seed-spawning contract;
* :class:`~repro.flow.designkit.FlowReport` raises ``FlowError`` on
  degenerate placements instead of returning silent infinities.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.analysis import legacy
from repro.analysis.experiments import (
    run_characterization,
    run_edp_summary,
    run_fig2_immunity,
    run_fig3_nand3,
    run_fig4_aoi31,
    run_fig7_fo4,
    run_fo4_transient_sweep,
    run_fulladder_case_study,
    run_immunity_sweep,
    run_pitch_sensitivity,
    run_table1,
)
from repro.errors import FlowError, StudyError
from repro.flow.designkit import FlowReport, FlowSummary
from repro.flow.placement import PlacementResult
from repro.circuit.logical_effort import PathTimingResult
from repro.study import (
    Fig3Result,
    Fig7Result,
    FullAdderResult,
    Provenance,
    StudyResult,
    SweepSpec,
    decode,
    encode,
    get_study,
    list_studies,
    parse_axis,
    run_study,
    run_sweep_study,
)


def _deep_equal(left, right) -> bool:
    """Bit-exact structural equality across dicts/lists/dataclasses."""
    if type(left) is not type(right) and not (
        isinstance(left, (list, tuple)) and isinstance(right, (list, tuple))
    ):
        return left == right
    if isinstance(left, dict):
        return (left.keys() == right.keys()
                and all(_deep_equal(left[k], right[k]) for k in left))
    if isinstance(left, (list, tuple)):
        return (len(left) == len(right)
                and all(_deep_equal(a, b) for a, b in zip(left, right)))
    return left == right


# ---------------------------------------------------------------------------
# Tagged serialization
# ---------------------------------------------------------------------------

class TestSerialize:
    def test_numpy_scalars_roundtrip_bit_identical(self):
        values = [np.float64(0.1), np.float32(3.5), np.int64(-7),
                  np.int32(12), np.bool_(True)]
        for value in values:
            restored = decode(encode(value))
            assert type(restored) is type(value)
            assert restored == value
        # float64 payloads are bit-exact through JSON text too.
        import json
        tricky = np.float64(0.1) + np.float64(0.2)
        assert decode(json.loads(json.dumps(encode(tricky)))) == tricky

    def test_arrays_tuples_bytes_and_intkey_dicts(self):
        payload = {
            "grid": np.arange(6, dtype=np.float64).reshape(2, 3),
            "shape": (2, 3),
            "blob": b"\x00\x01\xff",
            1: "scheme one",
        }
        restored = decode(encode(payload))
        assert isinstance(restored["grid"], np.ndarray)
        assert restored["grid"].dtype == np.float64
        assert (restored["grid"] == payload["grid"]).all()
        assert restored["shape"] == (2, 3)
        assert isinstance(restored["shape"], tuple)
        assert restored["blob"] == b"\x00\x01\xff"
        assert restored[1] == "scheme one"

    def test_tag_collision_escapes(self):
        payload = {"__tuple__": "not actually a tuple"}
        assert decode(encode(payload)) == payload

    def test_seed_sequence_roundtrip(self):
        seed = np.random.SeedSequence(2009, spawn_key=(3,))
        restored = decode(encode(seed))
        assert restored.entropy == seed.entropy
        assert restored.spawn_key == seed.spawn_key

    def test_non_repro_dataclass_rejected(self):
        @dataclasses.dataclass
        class Foreign:
            value: int = 1

        Foreign.__module__ = "somewhere.else"
        with pytest.raises(StudyError):
            encode(Foreign())


# ---------------------------------------------------------------------------
# SweepSpec / Corner
# ---------------------------------------------------------------------------

class TestSweepSpec:
    def test_grid_expansion_order(self):
        spec = SweepSpec.from_mapping({"a": (1, 2), "b": ("x", "y")})
        assert [c.as_dict() for c in spec.corners()] == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]
        assert spec.shape == (2, 2)
        assert len(spec) == 4

    def test_zip_expansion(self):
        spec = SweepSpec.from_mapping({"a": (1, 2), "b": (10, 20)}, mode="zip")
        assert [c.as_dict() for c in spec.corners()] == [
            {"a": 1, "b": 10}, {"a": 2, "b": 20},
        ]
        with pytest.raises(StudyError):
            SweepSpec.from_mapping({"a": (1, 2), "b": (10,)}, mode="zip")

    def test_parse_axis_forms(self):
        assert parse_axis("vdd=0.8:1.0:5").values == pytest.approx(
            (0.8, 0.85, 0.9, 0.95, 1.0))
        assert parse_axis("vdd=0.8:1.0:5").values[0] == 0.8
        assert parse_axis("vdd=0.8:1.0:5").values[-1] == 1.0
        assert parse_axis("cnts=2,4,8").values == (2, 4, 8)
        assert parse_axis("technique=compact").values == ("compact",)
        with pytest.raises(StudyError):
            parse_axis("novalue")
        with pytest.raises(StudyError):
            parse_axis("bad=1:2")

    def test_seed_contract_sharing_and_independence(self):
        spec = SweepSpec.from_mapping({
            "cnts_per_trial": (2, 4),
            "technique": ("vulnerable", "compact"),
        })
        seeds = spec.seeds(2009, share_axes=("technique",))
        corners = spec.corners()
        by_binding = {c.as_dict()["cnts_per_trial"]: [] for c in corners}
        for corner, child in zip(corners, seeds):
            by_binding[corner.as_dict()["cnts_per_trial"]].append(child)
        # Same non-shared binding -> identical child; different -> distinct.
        for children in by_binding.values():
            states = {tuple(c.generate_state(4)) for c in children}
            assert len(states) == 1
        assert (tuple(by_binding[2][0].generate_state(4))
                != tuple(by_binding[4][0].generate_state(4)))

    def test_seeds_do_not_mutate_caller_sequence(self):
        root = np.random.SeedSequence(7)
        spec = SweepSpec.from_mapping({"a": (1, 2, 3)})
        spec.seeds(root)
        assert root.n_children_spawned == 0
        first = [tuple(s.generate_state(2)) for s in spec.seeds(root)]
        second = [tuple(s.generate_state(2)) for s in spec.seeds(root)]
        assert first == second


# ---------------------------------------------------------------------------
# Shim equivalence: typed to_dict() == the pre-redesign payload
# ---------------------------------------------------------------------------

class TestShimEquivalence:
    def _legacy(self, shim, *args, **kwargs):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            return shim(*args, **kwargs)

    def test_fig2_fixed_seed(self):
        typed = run_fig2_immunity(trials=40, cnts_per_trial=4, seed=7)
        old = self._legacy(legacy.run_fig2_immunity, trials=40,
                           cnts_per_trial=4, seed=7)
        assert _deep_equal(typed.to_dict(), old)

    def test_fig7(self):
        typed = run_fig7_fo4(max_tubes=8)
        old = self._legacy(legacy.run_fig7_fo4, max_tubes=8)
        assert _deep_equal(typed.to_dict(), old)

    def test_fulladder(self):
        typed = run_fulladder_case_study()
        old = self._legacy(legacy.run_fulladder_case_study)
        assert typed.to_dict().keys() == old.keys()
        for key in old:
            if key == "flow_results":
                continue  # fresh FlowResult object graphs; compared below
            assert _deep_equal(typed.to_dict()[key], old[key]), key
        for scheme in (1, 2):
            new_flow = typed.to_dict()["flow_results"][scheme]
            old_flow = old["flow_results"][scheme]
            assert new_flow.summarize() == old_flow.summarize()

    def test_fig3_table1_fig4(self):
        assert _deep_equal(run_fig3_nand3().to_dict(),
                           self._legacy(legacy.run_fig3_nand3))
        assert _deep_equal(run_fig4_aoi31().to_dict(),
                           self._legacy(legacy.run_fig4_aoi31))
        assert _deep_equal(run_table1().to_dict(),
                           self._legacy(legacy.run_table1))

    def test_shims_warn_and_return_plain_dicts(self):
        with pytest.warns(DeprecationWarning):
            payload = legacy.run_fig3_nand3()
        assert type(payload) is dict

    def test_mapping_compatibility(self):
        result = run_fig7_fo4(max_tubes=4)
        assert result["optimal"]["delay_gain"] == result.optimal.delay_gain
        assert "sweep" in result
        assert set(result.keys()) == set(result.to_dict().keys())
        assert len(result) == len(result.to_dict())
        assert dict(result) == result.to_dict()


# ---------------------------------------------------------------------------
# JSON round-trip of every result dataclass
# ---------------------------------------------------------------------------

class TestJsonRoundTrip:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "table1": run_table1(),
            "fig2": run_fig2_immunity(trials=20, seed=7),
            "immunity_sweep": run_immunity_sweep(
                gates=("NAND2",), cnts_per_trial=(2, 4), trials=20, seed=7
            ),
            "fig3": run_fig3_nand3(),
            "fig4": run_fig4_aoi31(),
            "fig7": run_fig7_fo4(max_tubes=5),
            "fo4_transient": run_fo4_transient_sweep(tube_counts=(1, 4)),
            "characterization": run_characterization(
                gates=("INV",), drive_strengths=(1.0,),
            ),
            "pitch": run_pitch_sensitivity(steps=3),
            "fig8": run_fulladder_case_study(),
            "edp": run_edp_summary(),
            "sweep": run_sweep_study(
                SweepSpec.from_mapping(
                    {"cnts_per_trial": (2, 4), "technique": ("vulnerable", "compact")}
                ),
                engine="immunity", trials=20, seed=7,
            ),
        }

    def test_every_result_roundtrips_losslessly(self, results):
        for name, result in results.items():
            restored = StudyResult.from_json(result.to_json())
            assert type(restored) is type(result), name
            assert restored == result, name
            assert restored.provenance == result.provenance, name

    def test_characterization_numpy_fields_survive(self, results):
        result = results["characterization"]
        restored = StudyResult.from_json(result.to_json())
        for new, old in zip(restored.sweep.points, result.sweep.points):
            assert new.delay_rise_s == old.delay_rise_s
            assert new.energy_per_cycle_j == old.energy_per_cycle_j
        assert (restored.sweep.grid("worst_delay_s")
                == result.sweep.grid("worst_delay_s")).all()

    def test_json_text_deterministic(self):
        assert run_fig3_nand3().to_json() == run_fig3_nand3().to_json()

    def test_fulladder_serializes_summaries_not_artifacts(self, results):
        result = results["fig8"]
        assert result.flow_results is not None
        restored = StudyResult.from_json(result.to_json())
        assert restored.flow_results is None
        assert restored.flow_summaries == result.flow_summaries
        assert isinstance(restored.flow_summaries[1], FlowSummary)
        assert restored.flow_summaries[1].gds_sha256 \
            == result.flow_results[1].summarize().gds_sha256
        # to_dict() of a deserialized result exposes the summaries instead.
        assert restored.to_dict()["flow_results"] == result.flow_summaries

    def test_from_dict_accepts_live_payloads(self):
        result = run_fig3_nand3()
        rebuilt = Fig3Result.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()

    def test_from_json_dispatch_rejects_wrong_type(self):
        text = run_fig3_nand3().to_json()
        assert isinstance(Fig3Result.from_json(text), Fig3Result)
        with pytest.raises(StudyError):
            Fig7Result.from_json(text)

    def test_forward_compatible_provenance(self):
        """Unknown provenance fields (newer writers) are tolerated; broken
        provenance blocks raise StudyError, never a raw TypeError."""
        import json

        document = json.loads(run_fig3_nand3().to_json())
        document["provenance"]["added_in_v2"] = "future"
        restored = StudyResult.from_json_dict(document)
        assert restored.provenance.study == "fig3"
        document["provenance"] = {"params": {}}  # missing required 'study'
        with pytest.raises(StudyError):
            StudyResult.from_json_dict(document)
        document["provenance"] = "not an object"
        with pytest.raises(StudyError):
            StudyResult.from_json_dict(document)

    def test_cli_payload_matches_to_dict(self, results):
        """`--json` emits exactly the encoded legacy payload."""
        import json

        result = results["fig7"]
        document = json.loads(result.to_json())
        assert _deep_equal(decode(document["payload"]), result.to_dict())


# ---------------------------------------------------------------------------
# Registry + provenance
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_all_studies_listed(self):
        names = {definition.name for definition in list_studies()}
        assert {"table1", "fig2", "fig3", "fig4", "fig7", "fig8", "edp"} <= names

    def test_aliases_resolve(self):
        assert get_study("fulladder").name == "fig8"
        assert get_study("FIG7").name == "fig7"

    def test_run_study_typed_and_validated(self):
        result = run_study("fig3", unit_width=4.0)
        assert isinstance(result, Fig3Result)
        with pytest.raises(StudyError):
            run_study("fig3", bogus_parameter=1)
        with pytest.raises(StudyError):
            run_study("does_not_exist")

    def test_provenance_config_hash(self):
        first = run_study("fig3")
        second = run_study("fig3")
        different = run_study("fig3", unit_width=6.0)
        assert first.provenance.config_hash == second.provenance.config_hash
        assert first.provenance.config_hash != different.provenance.config_hash
        assert first.provenance.study == "fig3"
        assert first.provenance.package_version

    def test_provenance_records_seed_and_engine(self):
        result = run_fig2_immunity(trials=10, seed=123, engine="loop")
        assert result.provenance.seed == 123
        assert result.provenance.engine == "loop"
        assert result.provenance.params["trials"] == 10


# ---------------------------------------------------------------------------
# The unified sweep over both engines
# ---------------------------------------------------------------------------

class TestUnifiedSweep:
    def test_immunity_grid_matches_canonical_sweep(self):
        from repro.immunity.montecarlo import sweep as canonical

        spec = SweepSpec.from_mapping({
            "cnts_per_trial": (2, 4),
            "technique": ("vulnerable", "compact"),
        })
        study = run_sweep_study(spec, engine="immunity", trials=30, seed=7)
        points = canonical(
            gates=("NAND2",), techniques=("vulnerable", "compact"),
            cnts_per_trial=(2, 4), trials=30, seed=7,
        )
        canonical_rates = {
            (p.cnts_per_trial, p.technique): p.failure_rate for p in points
        }
        assert len(study.records) == 4
        for record in study.records:
            corner = record.corner.as_dict()
            assert record.metrics["failure_rate"] == canonical_rates[
                (corner["cnts_per_trial"], corner["technique"])
            ]

    def test_immunity_zip_shares_populations_across_techniques(self):
        spec = SweepSpec.from_mapping(
            {"technique": ("vulnerable", "compact")}, mode="zip"
        )
        study = run_sweep_study(spec, engine="immunity", trials=30, seed=7)
        assert len(study.records) == 2
        vulnerable, compact = study.records
        assert vulnerable.metrics["failure_rate"] > 0.0
        assert compact.metrics["immune"] is True

    def test_transient_grid(self):
        spec = SweepSpec.from_mapping({"vdd": (0.9, 1.0)})
        study = run_sweep_study(spec, engine="transient", cell="INV")
        assert len(study.records) == 2
        for record in study.records:
            assert record.metrics["worst_delay_s"] > 0.0
            assert record.metrics["energy_per_cycle_j"] > 0.0
        # Lower supply is slower for the same cell/load.
        assert (study.records[0].metrics["worst_delay_s"]
                > study.records[1].metrics["worst_delay_s"])

    def test_unknown_axis_rejected(self):
        with pytest.raises(StudyError):
            run_sweep_study(
                SweepSpec.from_mapping({"nonsense": (1,)}), engine="immunity"
            )
        with pytest.raises(StudyError):
            run_sweep_study(
                SweepSpec.from_mapping({"vdd": (1.0,)}), engine="immunity"
            )

    def test_sweep_str_renders_scalar_columns(self):
        spec = SweepSpec.from_mapping({"cnts_per_trial": (2,)})
        study = run_sweep_study(spec, engine="immunity", trials=10, seed=7)
        text = str(study)
        assert "failure_rate" in text
        assert "MonteCarloResult" not in text


# ---------------------------------------------------------------------------
# FlowReport hardening (satellite)
# ---------------------------------------------------------------------------

def _degenerate_report() -> FlowReport:
    empty_placement = PlacementResult(
        design_name="broken", style="row", placed=[],
        core_width=0.0, core_height=0.0,
    )
    timing = PathTimingResult(
        critical_path_delay=0.0, critical_path=(),
        total_energy_per_cycle=0.0, arrival_times={},
    )
    return FlowReport(
        design_name="broken", scheme=1, gate_count=0, cell_usage={},
        placement=empty_placement, timing=timing,
        cmos_placement=empty_placement, cmos_timing=timing,
    )


class TestFlowReportHardening:
    def test_degenerate_core_area_raises(self):
        report = _degenerate_report()
        with pytest.raises(FlowError, match="degenerate CNFET placement"):
            report.area_gain_vs_cmos

    def test_degenerate_timing_raises(self):
        report = _degenerate_report()
        with pytest.raises(FlowError, match="critical-path delay"):
            report.delay_gain_vs_cmos
        with pytest.raises(FlowError, match="energy per cycle"):
            report.energy_gain_vs_cmos

    def test_summary_propagates_the_error(self):
        with pytest.raises(FlowError):
            _degenerate_report().summary()

    def test_healthy_flow_unaffected(self):
        from repro.flow import CNFETDesignKit, full_adder_netlist

        kit = CNFETDesignKit(gate_set=("INV", "NAND2"),
                             drive_strengths=(1.0, 2.0, 4.0))
        report = kit.run_flow(full_adder_netlist()).report
        assert report.area_gain_vs_cmos > 1.0
        assert report.delay_gain_vs_cmos > 1.0
        assert "area gain" in report.summary()
