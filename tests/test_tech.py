"""Tests for repro.tech: design rules, layers, nodes and DRC."""

import pytest

from repro.errors import DesignRuleError, DRCViolationError, TechnologyError
from repro.geometry import LayoutCell, Rect
from repro.tech import (
    CMOS_RULES,
    CNFET_RULES,
    DRCChecker,
    DesignRules,
    LayerPurpose,
    check_cells,
    cmos65_node,
    cmos_layer_stack,
    cnfet65_node,
    cnfet_layer_stack,
    rules_by_name,
)


class TestDesignRules:
    def test_paper_stated_rules(self):
        # Section III / V: 2 λ gate, 2 λ etch minimum, ~3 λ vias, 6 λ vs 10 λ
        # PUN-PDN separation.
        assert CNFET_RULES.gate_length == 2.0
        assert CNFET_RULES.etch_width == 2.0
        assert CNFET_RULES.via_size >= 3.0
        assert CNFET_RULES.pun_pdn_separation == 6.0
        assert CMOS_RULES.pun_pdn_separation == 10.0
        assert CNFET_RULES.lambda_nm == pytest.approx(32.5)

    def test_conversions(self):
        assert CNFET_RULES.to_nm(4.0) == pytest.approx(130.0)
        assert CNFET_RULES.to_um(4.0) == pytest.approx(0.13)
        assert CNFET_RULES.area_to_um2(100.0) == pytest.approx(0.105625)

    def test_linear_chain_length(self):
        # contact-gate-contact for one device.
        expected = 2 * CNFET_RULES.contact_length + CNFET_RULES.gate_length + \
            2 * CNFET_RULES.gate_contact_spacing
        assert CNFET_RULES.linear_chain_length(2, 1) == pytest.approx(expected)

    def test_linear_chain_validation(self):
        with pytest.raises(DesignRuleError):
            CNFET_RULES.linear_chain_length(3, 1)

    def test_series_stack_length_grows_with_fanin(self):
        l2 = CNFET_RULES.series_stack_length(2)
        l3 = CNFET_RULES.series_stack_length(3)
        assert l3 > l2
        with pytest.raises(DesignRuleError):
            CNFET_RULES.series_stack_length(0)

    def test_invalid_rules_rejected(self):
        with pytest.raises(DesignRuleError):
            DesignRules(gate_length=-1.0)
        with pytest.raises(DesignRuleError):
            DesignRules(via_size=1.0, gate_length=2.0)

    def test_rules_by_name(self):
        assert rules_by_name("cnfet65") is CNFET_RULES
        assert rules_by_name("cmos65") is CMOS_RULES
        with pytest.raises(DesignRuleError):
            rules_by_name("cmos7")

    def test_scaled_changes_only_lambda(self):
        scaled = CNFET_RULES.scaled(45.0)
        assert scaled.lambda_nm == 45.0
        assert scaled.gate_length == CNFET_RULES.gate_length

    def test_as_dict_excludes_name(self):
        table = CNFET_RULES.as_dict()
        assert "name" not in table
        assert table["gate_length"] == 2.0


class TestLayerStacks:
    def test_cnfet_stack_has_cnt_and_etch(self):
        stack = cnfet_layer_stack()
        assert "cnt" in stack
        assert "cnt_etch" in stack
        assert stack.active_layer().name == "cnt"
        assert len(stack.metals()) == 7

    def test_cmos_stack_has_diffusion(self):
        stack = cmos_layer_stack()
        assert stack.active_layer().name == "diffusion"
        assert "nwell" in stack

    def test_gds_numbers_unique(self):
        stack = cnfet_layer_stack()
        numbers = [(l.gds_layer, l.gds_datatype) for l in stack]
        assert len(numbers) == len(set(numbers))

    def test_lookup_by_gds(self):
        stack = cnfet_layer_stack()
        poly = stack["poly"]
        assert stack.by_gds(poly.gds_layer, poly.gds_datatype) is poly
        assert stack.by_gds(999) is None

    def test_unknown_layer_raises(self):
        with pytest.raises(TechnologyError):
            cnfet_layer_stack()["metal99"]

    def test_names_ordered_by_level(self):
        names = cnfet_layer_stack().names()
        assert names.index("cnt") < names.index("poly") < names.index("metal1")

    def test_purpose_query(self):
        stack = cnfet_layer_stack()
        doping = stack.by_purpose(LayerPurpose.DOPING)
        assert {layer.name for layer in doping} == {"pplus", "nplus"}


class TestTechnologyNodes:
    def test_cnfet_node_defaults(self):
        node = cnfet65_node()
        assert node.is_cnfet
        assert node.supply_voltage == 1.0
        assert node.gate_stack.material == "polysilicon"
        assert node.oxide_under_cnt_um == 10.0
        assert node.layer_stack().name == "cnfet65"

    def test_cmos_node_defaults(self):
        node = cmos65_node()
        assert not node.is_cnfet
        assert node.rules.pun_pdn_separation == 10.0

    def test_with_supply(self):
        node = cnfet65_node().with_supply(0.9)
        assert node.supply_voltage == 0.9

    def test_gate_stack_capacitance_positive(self):
        node = cnfet65_node()
        assert node.gate_stack.capacitance_per_area > 0

    def test_invalid_node_rejected(self):
        from repro.tech.nodes import GateStack, TechnologyNode

        with pytest.raises(TechnologyError):
            TechnologyNode(
                name="bad", feature_size_nm=65, supply_voltage=1.0,
                gate_stack=GateStack(), rules=CNFET_RULES, is_cnfet=True,
                oxide_under_cnt_um=None,
            )


class TestDRC:
    def _clean_cell(self) -> LayoutCell:
        cell = LayoutCell("clean")
        cell.add_rect("boundary", Rect(0, 0, 30, 30))
        cell.add_rect("cnt", Rect(2, 2, 10, 28))
        cell.add_rect("poly", Rect(1, 12, 11, 14))
        cell.add_rect("contact", Rect(2, 2, 10, 5))
        cell.add_rect("metal1", Rect(2, 2, 10, 5))
        cell.add_rect("contact", Rect(2, 20, 10, 23))
        cell.add_rect("metal1", Rect(2, 20, 10, 23))
        return cell

    def test_clean_cell_passes(self):
        checker = DRCChecker(CNFET_RULES)
        assert checker.check(self._clean_cell()) == []
        checker.assert_clean(self._clean_cell())

    def test_narrow_poly_flagged(self):
        cell = self._clean_cell()
        cell.add_rect("poly", Rect(1, 25, 11, 26))  # 1λ wide < 2λ
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert any(v.rule == "min_width" and v.layer == "poly" for v in violations)

    def test_contact_over_gate_flagged(self):
        cell = self._clean_cell()
        cell.add_rect("contact", Rect(3, 12, 9, 14))
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert any(v.rule == "no_via_over_gate" for v in violations)

    def test_shape_outside_boundary_flagged(self):
        cell = self._clean_cell()
        cell.add_rect("metal1", Rect(28, 28, 40, 33))
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert any(v.rule == "inside_boundary" for v in violations)

    def test_poly_endcap_allowed_just_outside_boundary(self):
        cell = self._clean_cell()
        cell.add_rect("poly", Rect(-1, 16, 11, 18))  # 1λ endcap over the edge
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert not any(v.rule == "inside_boundary" for v in violations)

    def test_etch_over_gate_flagged(self):
        cell = self._clean_cell()
        cell.add_rect("cnt_etch", Rect(3, 11, 6, 15))
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert any(v.rule == "etch_clear_of_devices" for v in violations)

    def test_metal_spacing_flagged(self):
        cell = self._clean_cell()
        cell.add_rect("metal1", Rect(2, 6, 10, 9))   # 1λ below is another metal? gap=1
        violations = DRCChecker(CNFET_RULES).check(cell)
        assert any(v.rule == "min_spacing" and v.layer == "metal1" for v in violations)

    def test_assert_clean_raises_with_violations(self):
        cell = self._clean_cell()
        cell.add_rect("poly", Rect(1, 25, 11, 26))
        with pytest.raises(DRCViolationError):
            DRCChecker(CNFET_RULES).assert_clean(cell)

    def test_check_cells_reports_only_dirty(self):
        clean = self._clean_cell()
        dirty = self._clean_cell()
        dirty.name = "dirty"
        dirty.add_rect("poly", Rect(1, 25, 11, 26))
        report = check_cells([clean, dirty], CNFET_RULES)
        assert list(report) == ["dirty"]

    def test_generated_library_cells_are_drc_clean(self):
        from repro.core import assemble_cell
        from repro.logic import standard_gate

        checker = DRCChecker(CNFET_RULES)
        for name in ("INV", "NAND2", "NAND3", "NOR3", "AOI21", "AOI22", "OAI21"):
            for technique in ("compact", "baseline"):
                for scheme in (1, 2):
                    cell = assemble_cell(
                        standard_gate(name), technique=technique, scheme=scheme
                    )
                    assert checker.check(cell.cell) == [], (name, technique, scheme)
