"""Tests for repro.units and the exception hierarchy."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.units import (
    BOLTZMANN,
    ELECTRON_CHARGE,
    Lambda,
    THERMAL_VOLTAGE_V,
    edap,
    edp,
    format_si,
    joules_to_femtojoules,
    nm_to_m,
    nm_to_um,
    parse_si,
    seconds_to_picoseconds,
    um_to_nm,
)


class TestConstants:
    def test_thermal_voltage_at_room_temperature(self):
        assert THERMAL_VOLTAGE_V == pytest.approx(0.02585, rel=1e-3)

    def test_charge_and_boltzmann_are_si(self):
        assert ELECTRON_CHARGE == pytest.approx(1.602e-19, rel=1e-3)
        assert BOLTZMANN == pytest.approx(1.381e-23, rel=1e-3)


class TestLengthConversions:
    def test_nm_um_round_trip(self):
        assert um_to_nm(nm_to_um(123.0)) == pytest.approx(123.0)

    def test_nm_to_m(self):
        assert nm_to_m(1e9) == pytest.approx(1.0)

    @given(st.floats(min_value=1e-3, max_value=1e9, allow_nan=False))
    def test_round_trip_property(self, value):
        assert nm_to_um(um_to_nm(value)) == pytest.approx(value, rel=1e-12)


class TestLambda:
    def test_to_nm_uses_lambda_size(self):
        assert Lambda(4.0).to_nm(32.5) == pytest.approx(130.0)

    def test_arithmetic(self):
        total = Lambda(2.0) + Lambda(3.0)
        assert float(total) == pytest.approx(5.0)
        assert float(Lambda(4.0) - 1.0) == pytest.approx(3.0)
        assert float(2 * Lambda(3.0)) == pytest.approx(6.0)

    def test_comparisons(self):
        assert Lambda(2.0) < Lambda(3.0)
        assert Lambda(3.0) >= 3.0

    def test_invalid_lambda_nm_rejected(self):
        with pytest.raises(errors.UnitError):
            Lambda(1.0).to_nm(0.0)

    def test_non_finite_value_rejected(self):
        with pytest.raises(errors.UnitError):
            Lambda(float("nan"))

    def test_combining_with_string_rejected(self):
        with pytest.raises(errors.UnitError):
            Lambda(1.0) + "two"


class TestSIFormatting:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (3.2e-12, "s", "3.2ps"),
            (0.0, "F", "0F"),
            (1.5e-15, "J", "1.5fJ"),
            (2.5e6, "Hz", "2.5MHz"),
        ],
    )
    def test_format(self, value, unit, expected):
        assert format_si(value, unit) == expected

    def test_parse_round_trip(self):
        assert parse_si("3.2ps", "s") == pytest.approx(3.2e-12)
        assert parse_si(format_si(4.7e-15, "F"), "F") == pytest.approx(4.7e-15, rel=1e-2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(errors.UnitError):
            parse_si("not-a-number", "s")
        with pytest.raises(errors.UnitError):
            parse_si("", "s")

    @given(st.floats(min_value=1e-17, max_value=1e8, allow_nan=False))
    def test_format_parse_property(self, value):
        text = format_si(value, "X", digits=9)
        assert parse_si(text, "X") == pytest.approx(value, rel=1e-6)


class TestMetricsHelpers:
    def test_edp_and_edap(self):
        assert edp(2e-15, 3e-12) == pytest.approx(6e-27)
        assert edap(2e-15, 3e-12, 10.0) == pytest.approx(6e-26)

    def test_scalar_conversions(self):
        assert joules_to_femtojoules(1e-15) == pytest.approx(1.0)
        assert seconds_to_picoseconds(1e-12) == pytest.approx(1.0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.UnitError,
            errors.TechnologyError,
            errors.DesignRuleError,
            errors.GeometryError,
            errors.GDSError,
            errors.LogicError,
            errors.ExpressionParseError,
            errors.NetworkError,
            errors.EulerPathError,
            errors.DeviceModelError,
            errors.LayoutGenerationError,
            errors.ImmunityAnalysisError,
            errors.NetlistError,
            errors.SimulationError,
            errors.CharacterizationError,
            errors.LibraryError,
            errors.FlowError,
            errors.MappingError,
            errors.PlacementError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_parse_error_points_at_position(self):
        error = errors.ExpressionParseError("bad token", text="A ** B", position=3)
        assert "A ** B" in str(error)
        assert "^" in str(error)

    def test_drc_violation_error_summarises(self):
        violations = [f"violation {i}" for i in range(8)]
        error = errors.DRCViolationError(violations)
        assert "8 DRC violation(s)" in str(error)
        assert "3 more" in str(error)
        assert error.violations == violations
