#!/usr/bin/env python3
"""Diff a fresh ``repro-bench/v1`` envelope against a checked-in snapshot.

Every ``benchmarks/bench_*.py`` writer emits the same envelope (see
``benchmarks/bench_schema.py``), so regression checking is one generic
diff: compare the named ``wall_seconds`` and ``ns_per_unit`` entries,
then gate on the current run's contract —

* the current run's ``speedup`` must meet the ``floor`` the current run
  itself declares (full runs embed their required floor; ``--smoke``
  runs embed ``null`` because a shrunken workload can't honestly attest
  the full-size contract, so CI can diff smoke output informationally);
* a ``null`` floor (tracking-only benchmarks, smoke runs) makes the
  report purely informational and the exit status 0.

Usage::

    python benchmarks/bench_delta_sweep.py --smoke --out current.json
    python tools/bench_report.py current.json BENCH_runtime.json

Exit status 0 when the current speedup meets the declared floor (or no
floor applies), 1 on a regression or malformed/mismatched envelopes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, TextIO

BENCH_SCHEMA = "repro-bench/v1"


def _load(path: str) -> Any:
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _check_envelope(document: Any, label: str) -> Optional[str]:
    """One line describing why ``document`` is not a bench envelope."""
    if not isinstance(document, dict):
        return f"{label}: expected an object, got {type(document).__name__}"
    if document.get("schema") != BENCH_SCHEMA:
        return (f"{label}: schema is {document.get('schema')!r}, "
                f"expected {BENCH_SCHEMA!r}")
    for key in ("name", "wall_seconds"):
        if key not in document:
            return f"{label}: missing required key {key!r}"
    return None


def _diff_section(current: Dict[str, Any], snapshot: Dict[str, Any],
                  title: str, unit: str, out: TextIO) -> None:
    """Side-by-side numbers for one named-measurement section."""
    keys = [key for key in snapshot if key != "unit"]
    keys += [key for key in current if key != "unit" and key not in snapshot]
    if not keys:
        return
    out.write(f"{title}:\n")
    for key in keys:
        was, now = snapshot.get(key), current.get(key)
        if not (isinstance(was, (int, float)) and isinstance(now, (int, float))):
            out.write(f"  {key:<10} snapshot={was!r} current={now!r}\n")
            continue
        change = "" if not was else f"  ({(now - was) / was:+.1%})"
        out.write(f"  {key:<10} snapshot={was:g}{unit} "
                  f"current={now:g}{unit}{change}\n")


def report(current: Dict[str, Any], snapshot: Dict[str, Any],
           out: TextIO) -> int:
    """Render the diff; return the process exit status."""
    name = snapshot["name"]
    if current["name"] != name:
        out.write(f"error: benchmark mismatch: current is "
                  f"{current['name']!r}, snapshot is {name!r}\n")
        return 1

    out.write(f"benchmark: {name}\n")
    out.write(f"params: current={json.dumps(current.get('params', {}), sort_keys=True)}\n")
    out.write(f"        snapshot={json.dumps(snapshot.get('params', {}), sort_keys=True)}\n")
    _diff_section(current.get("wall_seconds") or {},
                  snapshot.get("wall_seconds") or {},
                  "wall_seconds", "s", out)
    unit = (snapshot.get("ns_per_unit") or {}).get("unit") \
        or (current.get("ns_per_unit") or {}).get("unit") or "unit"
    _diff_section(current.get("ns_per_unit") or {},
                  snapshot.get("ns_per_unit") or {},
                  f"ns_per_{unit}", "ns", out)

    floor = current.get("floor")
    speedup = current.get("speedup")
    if floor is None:
        was = snapshot.get("speedup")
        out.write(f"speedup: current={speedup!r} snapshot={was!r} "
                  f"(no floor declared; informational)\n")
        return 0
    if not isinstance(speedup, (int, float)):
        out.write(f"error: the run declares floor {floor:g} but reports "
                  f"no speedup\n")
        return 1
    verdict = "ok" if speedup >= floor else "REGRESSION"
    out.write(f"speedup: current={speedup:g} floor={floor:g} -> {verdict}\n")
    return 0 if speedup >= floor else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh repro-bench/v1 envelope against a "
                    "checked-in snapshot and gate on the run's floor.")
    parser.add_argument("current",
                        help="envelope from the run under test "
                             "('-' for stdin)")
    parser.add_argument("snapshot",
                        help="checked-in BENCH_*.json to compare against")
    args = parser.parse_args(argv)

    try:
        current = _load(args.current)
        snapshot = _load(args.snapshot)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    for document, label in ((current, args.current), (snapshot, args.snapshot)):
        problem = _check_envelope(document, label)
        if problem:
            print(f"error: {problem}", file=sys.stderr)
            return 1

    return report(current, snapshot, sys.stdout)


if __name__ == "__main__":
    raise SystemExit(main())
