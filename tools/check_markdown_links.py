#!/usr/bin/env python3
"""Check that every relative link in the repo's markdown docs resolves.

Scans the given markdown files (default: README.md and docs/) for inline
``[text](target)`` links, ignores external URLs and pure anchors, and
verifies each relative target exists on disk relative to the file that
references it.  Exits non-zero listing every broken link — the docs job
in CI runs this so README/docs can never drift away from the tree.

Usage: python tools/check_markdown_links.py [file-or-dir ...]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Optional, Sequence

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")  # inline links and images
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(arguments: list[str]) -> list[Path]:
    roots = [Path(argument) for argument in arguments] or [
        Path("README.md"), Path("docs"),
    ]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.md")))
        elif root.suffix == ".md" and root.exists():
            files.append(root)
        else:
            print(f"warning: skipping {root} (not a markdown file/dir)")
    return files


def broken_links(path: Path) -> list[str]:
    failures: list[str] = []
    for line_number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                failures.append(f"{path}:{line_number}: broken link -> {target}")
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/check_markdown_links.py",
        description=("Check that every relative [text](target) link in "
                     "the given markdown files/directories resolves on "
                     "disk; external URLs and pure #anchors are "
                     "skipped."),
        epilog=("Exit status: 0 all links resolve, 1 broken links "
                "(one line each), 2 no markdown files found."),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="file-or-dir",
        help="markdown files or directories to scan "
             "(default: README.md and docs/)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    files = markdown_files(build_parser().parse_args(argv).paths)
    if not files:
        print("error: no markdown files found")
        return 2
    failures: list[str] = []
    checked = 0
    for path in files:
        failures.extend(broken_links(path))
        checked += 1
    for failure in failures:
        print(failure)
    print(f"{checked} file(s) checked, {len(failures)} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
