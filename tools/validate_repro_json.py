#!/usr/bin/env python3
"""Validate a `repro run ... --json` document against a JSON schema.

A dependency-free validator for the subset of JSON Schema draft-07 that
``docs/repro_result.schema.json`` uses — ``type`` (including union types),
``const``, ``required``, ``properties``, ``minLength`` and ``items`` — so
CI can check CLI output without installing ``jsonschema``.

Usage::

    python tools/validate_repro_json.py docs/repro_result.schema.json result.json
    python -m repro run fig3 --json - | \
        python tools/validate_repro_json.py docs/repro_result.schema.json -

Exit status 0 when the document validates, 1 with one line per violation
otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional, Sequence

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _check_type(value: Any, expected: Any, path: str, errors: List[str]) -> None:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        python_type = _TYPES.get(name)
        if python_type is None:
            errors.append(f"{path}: schema uses unsupported type {name!r}")
            return
        if isinstance(value, python_type):
            # bool is an int subclass; don't let booleans satisfy numbers.
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return
    errors.append(
        f"{path}: expected type {expected}, got {type(value).__name__}"
    )


def validate(value: Any, schema: Any, path: str = "$",
             errors: List[str] | None = None) -> List[str]:
    """Collect schema violations of ``value``; empty list means valid."""
    errors = [] if errors is None else errors
    if not isinstance(schema, dict):
        errors.append(f"{path}: schema node must be an object")
        return errors
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "type" in schema:
        _check_type(value, schema["type"], path, errors)
    if "minLength" in schema and isinstance(value, str):
        if len(value) < schema["minLength"]:
            errors.append(
                f"{path}: string shorter than minLength {schema['minLength']}"
            )
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], subschema, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]", errors)
    return errors


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python tools/validate_repro_json.py",
        description=("Validate a `repro run ... --json` document against "
                     "a JSON schema (dependency-free draft-07 subset: "
                     "type, const, required, properties, minLength, "
                     "items)."),
        epilog=("Exit status: 0 valid, 1 invalid (one stderr line per "
                "violation), 2 usage error."),
    )
    parser.add_argument(
        "schema", metavar="SCHEMA.json",
        help="schema file, e.g. docs/repro_result.schema.json")
    parser.add_argument(
        "document", metavar="DOCUMENT.json",
        help="result document to validate ('-' reads stdin)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.schema, "r", encoding="utf-8") as stream:
        schema = json.load(stream)
    try:
        if args.document == "-":
            document = json.load(sys.stdin)
        else:
            with open(args.document, "r", encoding="utf-8") as stream:
                document = json.load(stream)
    except json.JSONDecodeError as error:
        sys.stderr.write(f"invalid: document is not JSON ({error})\n")
        return 1
    errors = validate(document, schema)
    if errors:
        for error in errors:
            sys.stderr.write(f"invalid: {error}\n")
        return 1
    study = document.get("study", "?") if isinstance(document, dict) else "?"
    sys.stderr.write(f"valid {study} result\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
